"""Property-based tests for the MiniJava compiler: random expression trees
must evaluate exactly as a Python reference interpreter with Java integer
semantics."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.lang import compile_source
from repro.vm.interpreter import _idiv, _imod
from repro.vm.vmcore import JVM, VMOptions


# ----------------------------------------------------- expression generator
_INT_BINOPS = ["+", "-", "*", "/", "%", "&", "|", "^"]
_CMP_OPS = ["<", "<=", ">", ">=", "==", "!="]


@st.composite
def int_expr(draw, depth=0):
    """(source_text, python_value) pairs with Java semantics."""
    if depth >= 4 or draw(st.booleans()):
        value = draw(st.integers(-50, 50))
        if value < 0:
            return f"(0 - {-value})", value
        return str(value), value
    kind = draw(st.sampled_from(["bin", "cmp", "neg", "paren", "logic"]))
    if kind == "neg":
        text, value = draw(int_expr(depth=depth + 1))
        return f"(-{text})", -value
    if kind == "paren":
        text, value = draw(int_expr(depth=depth + 1))
        return f"({text})", value
    left_t, left_v = draw(int_expr(depth=depth + 1))
    right_t, right_v = draw(int_expr(depth=depth + 1))
    if kind == "cmp":
        op = draw(st.sampled_from(_CMP_OPS))
        py = {
            "<": left_v < right_v, "<=": left_v <= right_v,
            ">": left_v > right_v, ">=": left_v >= right_v,
            "==": left_v == right_v, "!=": left_v != right_v,
        }[op]
        return f"({left_t} {op} {right_t})", int(py)
    if kind == "logic":
        op = draw(st.sampled_from(["&&", "||"]))
        if op == "&&":
            value = int(bool(left_v) and bool(right_v))
        else:
            value = int(bool(left_v) or bool(right_v))
        return f"({left_t} {op} {right_t})", value
    op = draw(st.sampled_from(_INT_BINOPS))
    if op in ("/", "%") and right_v == 0:
        op = "+"
    value = {
        "+": lambda: left_v + right_v,
        "-": lambda: left_v - right_v,
        "*": lambda: left_v * right_v,
        "/": lambda: _idiv(left_v, right_v),
        "%": lambda: _imod(left_v, right_v),
        "&": lambda: left_v & right_v,
        "|": lambda: left_v | right_v,
        "^": lambda: left_v ^ right_v,
    }[op]()
    return f"({left_t} {op} {right_t})", value


def evaluate_in_guest(expr_text: str) -> int:
    source = f"""
        class T {{
            static int out;
            static void main() {{ out = {expr_text}; }}
        }}
    """
    vm = JVM(VMOptions())
    for cls in compile_source(source):
        vm.load(cls)
    vm.spawn("T", "main", name="main")
    vm.run()
    return vm.get_static("T", "out")


class TestExpressionSemantics:
    @given(int_expr())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_expression_matches_reference(self, pair):
        text, expected = pair
        assert evaluate_in_guest(text) == expected

    @given(st.integers(-100, 100), st.integers(-100, 100))
    @settings(max_examples=30, deadline=None)
    def test_division_pairs(self, a, b):
        if b == 0:
            return
        assert evaluate_in_guest(f"(0 - {-a}) / (0 - {-b})"
                                 if a < 0 and b < 0 else f"({a}) / ({b})"
                                 if a >= 0 and b >= 0 else
                                 f"({a}) / ({b})") == _idiv(a, b)


class TestCompiledLoopSemantics:
    @given(st.integers(0, 30), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_loop_sum_matches_python(self, n, step):
        source = f"""
            class T {{
                static int out;
                static void main() {{
                    for (int i = 0; i < {n}; i = i + {step}) {{
                        out = out + i;
                    }}
                }}
            }}
        """
        vm = JVM(VMOptions())
        for cls in compile_source(source):
            vm.load(cls)
        vm.spawn("T", "main", name="main")
        vm.run()
        assert vm.get_static("T", "out") == sum(range(0, n, step))
