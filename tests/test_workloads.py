"""Tests for the extra guest workloads."""

import pytest

from repro.bench.workloads import (
    build_bank,
    build_bounded_buffer,
    build_deadlock_pair,
    build_deadlock_ring,
    build_medium_inversion,
)

from conftest import make_vm


class TestBoundedBuffer:
    @pytest.mark.parametrize("mode", ["unmodified", "rollback"])
    def test_all_items_flow_through(self, mode):
        w = build_bounded_buffer(
            capacity=3, items_per_producer=15, producers=2, consumers=2
        )
        vm = make_vm(mode)
        w.install(vm)
        vm.run()
        assert vm.get_static("Buffer", "produced") == 30
        assert vm.get_static("Buffer", "consumed") == 30
        assert vm.get_static("Buffer", "count") == 0

    def test_capacity_respected(self):
        """count never exceeds capacity: verified via trace of every
        producer section exit."""
        w = build_bounded_buffer(
            capacity=2, items_per_producer=10, producers=2, consumers=2
        )
        vm = make_vm("unmodified")

        peaks = []

        def probe(vm_, thread, args):
            peaks.append(vm_.get_static("Buffer", "count"))
            return None

        vm.register_native("probe", probe)
        w.install(vm)
        vm.run()
        # occupancy read from the heap post-run plus the invariant that
        # waiting producers park: the strongest cheap check is final state
        assert vm.get_static("Buffer", "count") == 0

    def test_uneven_consumer_split_rejected(self):
        with pytest.raises(ValueError):
            build_bounded_buffer(
                items_per_producer=10, producers=2, consumers=3
            )

    def test_wait_marks_on_modified_vm(self):
        w = build_bounded_buffer(
            capacity=1, items_per_producer=8, producers=2, consumers=2
        )
        vm = make_vm("rollback")
        w.install(vm)
        vm.run()
        # tiny capacity forces waits; each wait pins its section
        assert vm.metrics()["support"]["nonrevocable_wait"] > 0


class TestMediumInversion:
    def test_high_thread_waits_under_unmodified_priority_sched(self):
        w = build_medium_inversion(medium_threads=3)
        vm = make_vm("unmodified", scheduler="priority")
        w.install(vm)
        vm.run()
        high = vm.thread_named("high")
        medium = vm.thread_named("medium-0")
        # classic inversion: high finishes only after the mediums' work
        assert high.end_time > medium.end_time

    def test_rollback_frees_high_thread_quickly(self):
        w_base = build_medium_inversion(medium_threads=3)
        vm_base = make_vm("unmodified", scheduler="priority")
        w_base.install(vm_base)
        vm_base.run()

        w_fix = build_medium_inversion(medium_threads=3)
        vm_fix = make_vm("rollback", scheduler="priority")
        w_fix.install(vm_fix)
        vm_fix.run()
        assert (
            vm_fix.thread_named("high").elapsed()
            < vm_base.thread_named("high").elapsed()
        )


class TestDeadlockWorkloads:
    def test_pair_structure(self):
        w = build_deadlock_pair()
        assert len(w.spawns) == 2
        assert w.classdef.method("run").argc == 2

    def test_ring_size_validation(self):
        with pytest.raises(ValueError):
            build_deadlock_ring(1)

    def test_ring_spawn_plan_closes_cycle(self):
        w = build_deadlock_ring(5)
        pairs = [tuple(args) for _, args, _, _ in w.spawns]
        firsts = [p[0] for p in pairs]
        seconds = [p[1] for p in pairs]
        assert sorted(firsts) == list(range(5))
        assert sorted(seconds) == list(range(5))
        assert all(p[1] == (p[0] + 1) % 5 for p in pairs)


class TestBank:
    def test_no_self_transfers(self):
        """The generated code redirects dst when dst == src, so an account
        never locks itself recursively for a transfer."""
        w = build_bank(accounts=3, transfers=25)
        vm = make_vm("rollback", seed=5)
        w.install(vm)
        vm.run()
        balances = vm.get_static("Bank", "balances").snapshot()
        assert sum(balances) == 300

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_balance_conserved_across_seeds(self, seed):
        w = build_bank(accounts=5, transfers=30)
        vm = make_vm("rollback", seed=seed)
        w.install(vm)
        vm.run()
        assert sum(vm.get_static("Bank", "balances").snapshot()) == 500


class TestPhilosophers:
    def test_naive_forks_deadlock_on_baseline(self):
        import pytest as _pytest

        from repro import DeadlockError
        from repro.bench.workloads import build_philosophers

        deadlocked = 0
        for seed in range(4):
            w = build_philosophers(5, rounds=3)
            vm = make_vm("unmodified", seed=seed)
            w.install(vm)
            try:
                vm.run()
            except DeadlockError:
                deadlocked += 1
        assert deadlocked >= 1

    def test_rollback_vm_always_finishes_dinner(self):
        from repro.bench.workloads import build_philosophers

        for seed in range(4):
            w = build_philosophers(5, rounds=3)
            vm = make_vm("rollback", seed=seed)
            w.install(vm)
            vm.run()
            assert vm.get_static("Philosophers", "meals") == 5 * 3
            assert vm.all_terminated()

    def test_size_validation(self):
        import pytest as _pytest

        from repro.bench.workloads import build_philosophers

        with _pytest.raises(ValueError):
            build_philosophers(1)
