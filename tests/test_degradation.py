"""Graceful degradation: the per-site retry budget, exponential backoff,
the revocable -> inheritance -> nonrevocable ladder, and the scheduler's
starvation watchdog."""

from repro import Asm, FaultPlan
from repro.core.sections import (
    LADDER_INHERITANCE,
    LADDER_NONREVOCABLE,
    LADDER_REVOCABLE,
    REASON_DEGRADED,
)

from conftest import build_class, make_vm


def _trivial_vm(**options):
    run = Asm("run", argc=0)
    run.ret()
    vm = make_vm("rollback", **options)
    vm.load(build_class("T", [], [run]))
    return vm


def _contention_vm(**options):
    """run(iters, delay): sleep, then increment ``counter`` iters times
    inside one synchronized section.  Spawns ``low`` (long section, prio 1)
    and ``high`` (short section, prio 10, arrives mid-way)."""
    run = Asm("run", argc=2)
    run.load(1).sleep()
    run.getstatic("T", "lock")
    with run.sync():
        i = run.local()
        run.for_range(i, lambda: run.load(0), lambda: (
            run.getstatic("T", "counter"), run.const(1), run.add(),
            run.putstatic("T", "counter"),
        ))
    run.ret()
    cls = build_class("T", ["lock:ref", "counter:int"], [run])
    vm = make_vm("rollback", **options)
    vm.load(cls)
    vm.set_static("T", "lock", vm.new_object("T"))
    low = vm.spawn("T", "run", args=[4_000, 1], priority=1, name="low")
    vm.spawn("T", "run", args=[50, 8_000], priority=10, name="high")
    return vm, low


def _only_site(vm, thread):
    """The (pre-created) site of the method's single synchronized scope."""
    scopes = vm.resolve_method("T", "run").rollback_scopes
    assert len(scopes) == 1
    return vm.support._site(thread, next(iter(scopes)))


class TestLadderUnit:
    def test_escalation_is_sticky_and_bottoms_out(self):
        vm = _trivial_vm()
        t = vm.spawn("T", "run", name="a")
        site = vm.support._site(t, "site")
        assert site.level == LADDER_REVOCABLE
        assert vm.support._degrade(t, site, reason="test") == (
            LADDER_INHERITANCE
        )
        assert vm.support._degrade(t, site, reason="test") == (
            LADDER_NONREVOCABLE
        )
        assert vm.support._degrade(t, site, reason="test") is None
        m = vm.support.metrics
        assert m.degradations_to_inheritance == 1
        assert m.degradations_to_nonrevocable == 1
        assert len(vm.tracer.of_kind("degrade")) == 2

    def test_commit_refills_budget_but_keeps_rung(self):
        vm = _trivial_vm()
        t = vm.spawn("T", "run", name="a")
        site = vm.support._site(t, "site")
        site.attempts = 5
        site.grace_until = 99_999
        vm.support._degrade(t, site, reason="test")
        site.commit()
        assert site.attempts == 0
        assert site.grace_until == 0
        assert site.level == LADDER_INHERITANCE  # degradation is sticky


class TestInheritanceRung:
    def test_denied_revocation_donates_priority(self):
        """At the inheritance rung the requester's priority is donated to
        the holder instead of revoking — the paper's priority-inheritance
        baseline as a per-site fallback."""
        vm, low = _contention_vm()
        _only_site(vm, low).level = LADDER_INHERITANCE
        vm.run()
        s = vm.metrics()["support"]
        assert s["revocations_completed"] == 0
        assert s["revocations_denied_degraded"] >= 1
        assert s["priority_donations"] >= 1
        denied = vm.tracer.of_kind("revocation_denied")
        assert any(
            e.details["reason"] == "degraded-inheritance" for e in denied
        )
        assert vm.tracer.of_kind("inherit")
        assert vm.get_static("T", "counter") == 4_000 + 50
        # the donation was shed when the monitor was handed off
        assert low.effective_priority == low.priority == 1

    def test_donation_visible_while_section_active(self):
        vm, low = _contention_vm()
        _only_site(vm, low).level = LADDER_INHERITANCE
        seen: list[int] = []
        original = type(vm.support).on_monitor_exited

        def spy(support, thread, monitor, frame, sync_id):
            if thread.name == "low":
                seen.append(thread.effective_priority)
            return original(support, thread, monitor, frame, sync_id)

        vm.support.on_monitor_exited = spy.__get__(vm.support)
        vm.run()
        assert seen and seen[0] == 10  # donated priority held at exit


class TestNonrevocableRung:
    def test_fully_degraded_site_pins_sections_at_entry(self):
        """At the bottom rung every execution is marked non-revocable on
        monitorenter, so detection stops requesting doomed revocations."""
        vm, low = _contention_vm()
        _only_site(vm, low).level = LADDER_NONREVOCABLE
        vm.run()
        s = vm.metrics()["support"]
        assert s["nonrevocable_degraded"] >= 1
        assert s["revocations_completed"] == 0
        assert s["revocations_denied_nonrevocable"] >= 1
        marks = vm.tracer.of_kind("nonrevocable")
        assert any(
            e.details["reason"] == REASON_DEGRADED for e in marks
        )
        assert vm.get_static("T", "counter") == 4_000 + 50


class TestBackoff:
    def test_exponential_backoff_lets_the_section_finish(self):
        """With backoff enabled (and no budget) a permanent storm is held
        off for exponentially growing windows until the section commits."""
        run = Asm("run", argc=0)
        run.getstatic("T", "lock")
        with run.sync():
            i = run.local()
            run.for_range(i, lambda: run.const(4_000), lambda: (
                run.getstatic("T", "counter"), run.const(1), run.add(),
                run.putstatic("T", "counter"),
            ))
        run.ret()
        cls = build_class("T", ["lock:ref", "counter:int"], [run])
        vm = make_vm(
            "rollback",
            faults=FaultPlan(revocation_storm_rate=1.0),
            revocation_retry_budget=0,
            revocation_backoff=4_000,
            watchdog_interval=0,
            livelock_grace=0,
            max_cycles=30_000_000,
        )
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        vm.spawn("T", "run", name="victim")
        vm.run()
        s = vm.metrics()["support"]
        assert vm.get_static("T", "counter") == 4_000
        assert s["backoff_windows_granted"] >= 1
        assert s["revocations_denied_grace"] >= 1
        assert vm.tracer.of_kind("site_backoff")
        denied = vm.tracer.of_kind("revocation_denied")
        assert any(e.details["reason"] == "site-backoff" for e in denied)


class TestWatchdog:
    def test_watchdog_degrades_a_starving_site(self):
        """Budget and backoff off: the slice-count watchdog notices the
        revocations-without-commits pattern and degrades the hot site."""
        run = Asm("run", argc=0)
        run.getstatic("T", "lock")
        with run.sync():
            i = run.local()
            run.for_range(i, lambda: run.const(4_000), lambda: (
                run.getstatic("T", "counter"), run.const(1), run.add(),
                run.putstatic("T", "counter"),
            ))
        run.ret()
        cls = build_class("T", ["lock:ref", "counter:int"], [run])
        vm = make_vm(
            "rollback",
            faults=FaultPlan(revocation_storm_rate=1.0),
            revocation_retry_budget=0,
            revocation_backoff=0,
            watchdog_interval=4,
            watchdog_revocations=2,
            livelock_grace=0,
            max_cycles=30_000_000,
        )
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        victim = vm.spawn("T", "run", name="victim")
        vm.run()
        s = vm.metrics()["support"]
        assert vm.get_static("T", "counter") == 4_000
        assert s["starvations_detected"] >= 1
        assert s["degradations_to_inheritance"] >= 1
        # the scheduler-level trip counter mirrors the support metric
        assert vm.metrics()["watchdog_trips"] >= 1
        assert vm.tracer.of_kind("starvation")
        degrades = vm.tracer.of_kind("degrade")
        assert any(e.details["reason"] == "starvation" for e in degrades)
        assert victim.sections_committed == 1

    def test_watchdog_quiet_on_healthy_run(self):
        """A fault-free multi-thread run with an aggressive watchdog never
        trips it (commits keep advancing)."""
        run = Asm("run", argc=0)
        run.getstatic("T", "lock")
        with run.sync():
            i = run.local()
            run.for_range(i, lambda: run.const(300), lambda: (
                run.getstatic("T", "counter"), run.const(1), run.add(),
                run.putstatic("T", "counter"),
            ))
        run.ret()
        cls = build_class("T", ["lock:ref", "counter:int"], [run])
        vm = make_vm("rollback", watchdog_interval=2, watchdog_revocations=1)
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        for k in range(3):
            vm.spawn("T", "run", name=f"t{k}")
        vm.run()
        assert vm.metrics()["support"]["starvations_detected"] == 0
        assert vm.metrics()["watchdog_trips"] == 0
        assert vm.get_static("T", "counter") == 3 * 300
