"""Unit tests for the text table/chart renderers."""

import pytest

from repro.util.fmt import ascii_chart, format_table


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["name", "value"], [["x", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        widths = {len(line) for line in lines}
        assert len(widths) <= 2  # header may be rstripped

    def test_float_formatting(self):
        out = format_table(["v"], [[1.23456]])
        assert "1.235" in out

    def test_custom_float_format(self):
        out = format_table(["v"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in out

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestAsciiChart:
    def test_contains_series_glyphs_and_legend(self):
        out = ascii_chart(
            [0, 1, 2],
            {"up": [0.0, 1.0, 2.0], "down": [2.0, 1.0, 0.0]},
            title="t",
        )
        assert "t" in out
        assert "* up" in out and "o down" in out
        assert out.count("*") >= 3  # legend + plotted points

    def test_collision_marker(self):
        out = ascii_chart([0, 1], {"a": [1.0, 1.0], "b": [1.0, 2.0]})
        assert "#" in out

    def test_flat_series_does_not_divide_by_zero(self):
        out = ascii_chart([0, 1], {"flat": [3.0, 3.0]})
        assert "flat" in out

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"a": [1.0]})

    def test_empty_x_raises(self):
        with pytest.raises(ValueError):
            ascii_chart([], {"a": []})

    def test_y_label(self):
        out = ascii_chart([0, 1], {"a": [0.0, 1.0]}, y_label="cycles")
        assert "cycles" in out
