"""JMM-consistency integration tests (paper §2).

Recreates the paper's Figures 2 and 4 scenarios plus the §2.2 rules for
native methods and ``wait``, and checks that non-revocability actually
blocks revocation (the contender falls back to classic blocking).
"""

from repro import Asm

from conftest import build_class, make_vm


def _writer_reader_contender(cls_name, *, volatile=False, nested=True):
    """Builds the Figure 2 (nested) / Figure 3 (volatile) programs.

    * writer (prio 1): enters outer (and inner when nested), writes v,
      exits inner, then spins holding outer.
    * reader (prio 5): after a delay, reads v (through inner's monitor in
      the nested variant; bare volatile read otherwise).
    * contender (prio 10): after a longer delay, tries to enter outer.
    """
    fields = ["outer:ref", "inner:ref", "seen:int"]
    fields.append("v:int:volatile" if volatile else "v:int")
    writer = Asm("writer", argc=0)
    writer.getstatic(cls_name, "outer")
    with writer.sync():
        if nested:
            writer.getstatic(cls_name, "inner")
            with writer.sync():
                writer.const(1).putstatic(cls_name, "v")
        else:
            writer.const(1).putstatic(cls_name, "v")
        i = writer.local()
        writer.for_range(i, lambda: writer.const(4_000), lambda:
                         writer.const(0).pop())
    writer.ret()

    reader = Asm("reader", argc=0)
    reader.const(2_000).sleep()
    if nested:
        reader.getstatic(cls_name, "inner")
        with reader.sync():
            reader.getstatic(cls_name, "v").putstatic(cls_name, "seen")
    else:
        reader.getstatic(cls_name, "v").putstatic(cls_name, "seen")
    reader.ret()

    contender = Asm("contender", argc=0)
    contender.const(6_000).sleep()
    contender.getstatic(cls_name, "outer")
    with contender.sync():
        contender.const(0).pop()
    contender.ret()
    return build_class(cls_name, fields, [writer, reader, contender])


def run_scenario(cls, *, spawn_reader=True):
    vm = make_vm("rollback")
    vm.load(cls)
    vm.set_static(cls.name, "outer", vm.new_object(cls.name))
    vm.set_static(cls.name, "inner", vm.new_object(cls.name))
    vm.spawn(cls.name, "writer", priority=1, name="T")
    if spawn_reader:
        vm.spawn(cls.name, "reader", priority=5, name="T2")
    vm.spawn(cls.name, "contender", priority=10, name="Th")
    vm.run()
    return vm


class TestFigure2Nesting:
    def test_exposed_write_pins_sections(self):
        vm = run_scenario(_writer_reader_contender("F", nested=True))
        assert vm.get_static("F", "seen") == 1  # the read was legal
        s = vm.metrics()["support"]
        assert s["nonrevocable_dependency"] >= 1
        assert s["revocations_completed"] == 0
        assert s["revocations_denied_nonrevocable"] >= 1

    def test_without_reader_revocation_proceeds(self):
        """Control: same program minus the reader — nothing is exposed, so
        the high-priority contender CAN revoke the writer."""
        vm = run_scenario(
            _writer_reader_contender("F", nested=True), spawn_reader=False
        )
        s = vm.metrics()["support"]
        assert s["revocations_completed"] >= 1

    def test_reader_with_same_monitor_discipline_is_safe(self):
        """Paper §2.2 intuition: 'programmers guard accesses to the same
        subset of shared data using the same set of monitors; in such cases
        there is no need to force non-revocability'.  A reader that takes
        the OUTER monitor is excluded until commit, so nothing is pinned
        by it."""
        cls_name = "G"
        writer = Asm("writer", argc=0)
        writer.getstatic(cls_name, "outer")
        with writer.sync():
            writer.const(1).putstatic(cls_name, "v")
            i = writer.local()
            writer.for_range(i, lambda: writer.const(4_000), lambda:
                             writer.const(0).pop())
        writer.ret()

        reader = Asm("reader", argc=0)
        reader.const(2_000).sleep()
        reader.getstatic(cls_name, "outer")
        with reader.sync():
            reader.getstatic(cls_name, "v").putstatic(cls_name, "seen")
        reader.ret()
        cls = build_class(cls_name, ["outer:ref", "v:int", "seen:int"],
                          [writer, reader])
        vm = make_vm("rollback")
        vm.load(cls)
        vm.set_static(cls_name, "outer", vm.new_object(cls_name))
        vm.spawn(cls_name, "writer", priority=1, name="T")
        vm.spawn(cls_name, "reader", priority=5, name="T2")
        vm.run()
        s = vm.metrics()["support"]
        assert s["nonrevocable_dependency"] == 0


class TestFigure3Volatile:
    def test_volatile_exposure_pins_section(self):
        vm = run_scenario(_writer_reader_contender(
            "V", volatile=True, nested=False,
        ))
        assert vm.get_static("V", "seen") == 1
        s = vm.metrics()["support"]
        assert s["revocations_completed"] == 0
        assert s["nonrevocable_marks"] >= 1

    def test_volatile_write_outside_section_is_free(self):
        """A volatile write by a thread in no section is committed
        immediately — it never pins anything."""
        cls_name = "W"
        writer = Asm("writer", argc=0)
        writer.const(1).putstatic(cls_name, "v")
        writer.ret()
        reader = Asm("reader", argc=0)
        reader.const(500).sleep()
        reader.getstatic(cls_name, "v").putstatic(cls_name, "seen")
        reader.ret()
        cls = build_class(cls_name, ["v:int:volatile", "seen:int"],
                          [writer, reader])
        vm = make_vm("rollback")
        vm.load(cls)
        vm.spawn(cls_name, "writer", priority=1, name="T")
        vm.spawn(cls_name, "reader", priority=5, name="T2")
        vm.run()
        assert vm.get_static(cls_name, "seen") == 1
        assert vm.metrics()["support"]["nonrevocable_marks"] == 0


class TestNativeRule:
    def test_native_call_pins_all_enclosing_sections(self):
        cls_name = "N"
        low = Asm("low", argc=0)
        low.getstatic(cls_name, "outer")
        with low.sync():
            low.getstatic(cls_name, "inner")
            with low.sync():
                low.const("inside").native("println", 1)
                i = low.local()
                low.for_range(i, lambda: low.const(4_000), lambda:
                              low.const(0).pop())
        low.ret()

        high = Asm("high", argc=0)
        high.const(3_000).sleep()
        high.getstatic(cls_name, "outer")
        with high.sync():
            high.const(0).pop()
        high.ret()
        cls = build_class(cls_name, ["outer:ref", "inner:ref"], [low, high])
        vm = make_vm("rollback")
        vm.load(cls)
        vm.set_static(cls_name, "outer", vm.new_object(cls_name))
        vm.set_static(cls_name, "inner", vm.new_object(cls_name))
        vm.spawn(cls_name, "low", priority=1, name="low")
        vm.spawn(cls_name, "high", priority=10, name="high")
        vm.run()
        s = vm.metrics()["support"]
        assert s["nonrevocable_native"] == 2  # outer AND inner pinned
        assert s["revocations_completed"] == 0
        assert vm.console == ["inside"]  # printed exactly once: no re-run

    def test_native_call_before_section_is_free(self):
        cls_name = "M"
        low = Asm("low", argc=0)
        low.const("outside").native("println", 1)
        low.getstatic(cls_name, "lock")
        with low.sync():
            i = low.local()
            low.for_range(i, lambda: low.const(4_000), lambda:
                          low.const(0).pop())
        low.ret()

        high = Asm("high", argc=0)
        high.const(3_000).sleep()
        high.getstatic(cls_name, "lock")
        with high.sync():
            high.const(0).pop()
        high.ret()
        cls = build_class(cls_name, ["lock:ref"], [low, high])
        vm = make_vm("rollback")
        vm.load(cls)
        vm.set_static(cls_name, "lock", vm.new_object(cls_name))
        vm.spawn(cls_name, "low", priority=1, name="low")
        vm.spawn(cls_name, "high", priority=10, name="high")
        vm.run()
        s = vm.metrics()["support"]
        assert s["nonrevocable_native"] == 0
        assert s["revocations_completed"] >= 1


class TestWaitRule:
    def test_wait_pins_enclosing_sections(self):
        """wait inside nested monitors -> enclosing sections become
        non-revocable; a later inversion on the outer lock is denied."""
        cls_name = "Q"
        low = Asm("low", argc=0)
        low.getstatic(cls_name, "outer")
        with low.sync():
            low.getstatic(cls_name, "inner")
            with low.sync():
                low.getstatic(cls_name, "inner").const(1_000).timed_wait()
            i = low.local()
            low.for_range(i, lambda: low.const(4_000), lambda:
                          low.const(0).pop())
        low.ret()

        high = Asm("high", argc=0)
        high.const(3_000).sleep()
        high.getstatic(cls_name, "outer")
        with high.sync():
            high.const(0).pop()
        high.ret()
        cls = build_class(cls_name, ["outer:ref", "inner:ref"], [low, high])
        vm = make_vm("rollback")
        vm.load(cls)
        vm.set_static(cls_name, "outer", vm.new_object(cls_name))
        vm.set_static(cls_name, "inner", vm.new_object(cls_name))
        vm.spawn(cls_name, "low", priority=1, name="low")
        vm.spawn(cls_name, "high", priority=10, name="high")
        vm.run()
        s = vm.metrics()["support"]
        assert s["nonrevocable_wait"] >= 2
        assert s["revocations_completed"] == 0


class TestFigure4Semantics:
    def test_producer_consumer_dependency_completes(self):
        """The paper's Figure 4: T' loops reading v under ``inner`` until T
        (inside ``outer``+``inner``) sets it.  Re-scheduling T' before T is
        semantically impossible; our runtime handles it by pinning T's
        sections once T' observes the write, and the program completes on
        both VMs."""
        cls_name = "P"
        t = Asm("t", argc=0)
        t.getstatic(cls_name, "outer")
        with t.sync():
            t.getstatic(cls_name, "inner")
            with t.sync():
                t.const(1).putstatic(cls_name, "v")
            i = t.local()
            t.for_range(i, lambda: t.const(2_000), lambda:
                        t.const(0).pop())
        t.ret()

        # T': while (true) { synchronized(inner) { if (v) break; } }
        # expressed as a flag-polling loop so the break lands cleanly
        # outside the monitorexit (javac compiles Figure 4 the same way:
        # the break jumps to code after the release).
        def _poll(a, cn, flag_local):
            a.getstatic(cn, "inner")
            with a.sync():
                a.getstatic(cn, "v").store(flag_local)

        t2 = Asm("t2", argc=0)
        flag = t2.local()
        t2.const(0).store(flag)
        t2.while_(
            lambda: t2.load(flag).not_(),
            lambda: _poll(t2, cls_name, flag),
        )
        t2.const(1).putstatic(cls_name, "observed")
        t2.ret()

        cls = build_class(
            cls_name, ["outer:ref", "inner:ref", "v:int", "observed:int"],
            [t, t2],
        )
        for mode in ("unmodified", "rollback"):
            vm = make_vm(mode)
            vm.load(cls)
            vm.set_static(cls_name, "outer", vm.new_object(cls_name))
            vm.set_static(cls_name, "inner", vm.new_object(cls_name))
            vm.spawn(cls_name, "t", priority=1, name="T")
            vm.spawn(cls_name, "t2", priority=5, name="T2")
            vm.run()
            assert vm.get_static(cls_name, "observed") == 1, mode
            assert vm.get_static(cls_name, "v") == 1, mode
