"""The ``python -m repro.obs`` CLI, the bench/check observability flags,
the tracer sink-hardening satellite, and the timeline width budget."""

from __future__ import annotations

import itertools
import json

import pytest

from repro.core import sections
from repro.obs.__main__ import main as obs_main
from repro.vm.assembler import Asm
from repro.vm.vmcore import JVM, VMOptions

SERIAL = ["--jobs", "1", "--no-cache"]


def _obs(capsys, *argv):
    rc = obs_main(list(argv) + SERIAL)
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


def test_list_names_scenarios(capsys):
    rc = obs_main(["--list"])
    out = capsys.readouterr().out
    assert rc == 0
    for name in ("fig5a", "fig8c", "handoff", "deadlock-pair",
                 "philosophers"):
        assert name in out


def test_summary_subcommand(capsys):
    rc, out, err = _obs(capsys, "summary", "--scenario", "deadlock-pair")
    assert rc == 0
    assert "outcome completed" in out
    assert "cycles by track" in out
    assert "0 dropped, 0 sink errors" in out
    assert "WARNING" not in err


def test_spans_subcommand_json(capsys):
    rc, out, _ = _obs(capsys, "spans", "--scenario", "deadlock-pair",
                      "--json")
    assert rc == 0
    lines = out.strip().splitlines()
    assert json.loads(lines[0])["format"] == "repro.obs/1"
    kinds = {json.loads(line)["kind"] for line in lines[1:]}
    assert "thread" in kinds and "section" in kinds


def test_profile_subcommand(capsys):
    rc, out, _ = _obs(capsys, "profile", "--scenario", "deadlock-pair")
    assert rc == 0
    assert "undo_log" in out and "rollback" in out
    assert "final clock" in out


def test_export_chrome(tmp_path, capsys):
    out_file = tmp_path / "trace.json"
    rc, out, err = _obs(capsys, "export", "--scenario", "handoff",
                        "--fmt", "chrome", "-o", str(out_file))
    assert rc == 0
    assert str(out_file) in out
    doc = json.loads(out_file.read_text())
    other = doc["otherData"]
    total = sum(
        sum(cats.values()) for cats in other["cycles_by_track"].values()
    )
    assert total == other["clock"] == other["cycles_total"]
    assert "perfetto" in err


def test_export_folded(tmp_path, capsys):
    out_file = tmp_path / "stacks.folded"
    rc, _, _ = _obs(capsys, "export", "--scenario", "deadlock-pair",
                    "--fmt", "folded", "-o", str(out_file))
    assert rc == 0
    for line in out_file.read_text().splitlines():
        stack, cycles = line.rsplit(" ", 1)
        int(cycles)


def test_summary_warns_loudly_on_truncation(monkeypatch, capsys):
    """Satellite: a truncated trace must shout, not whisper."""
    from repro.vm import tracing

    real_init = tracing.Tracer.__init__

    def tiny_init(self, enabled=False, capacity=1_000_000):
        real_init(self, enabled=enabled, capacity=8)

    monkeypatch.setattr(tracing.Tracer, "__init__", tiny_init)
    rc, _, err = _obs(capsys, "summary", "--scenario", "deadlock-pair")
    assert rc == 0
    assert "WARNING" in err
    assert "TRUNCATED" in err


def test_unknown_scenario_is_a_helpful_error(capsys):
    with pytest.raises(KeyError, match="known:"):
        _obs(capsys, "summary", "--scenario", "no-such-thing")


# ------------------------------------------------ tracer sink hardening
def test_raising_sink_is_detached_not_fatal():
    """Satellite: an observability sink must never take down the run."""
    from repro.bench.workloads import build_deadlock_pair

    Asm._sync_counter = 0
    sections._section_ids = itertools.count(1)
    vm = JVM(VMOptions(mode="rollback", trace=True))
    calls = []

    def bad_sink(event):
        calls.append(event)
        raise RuntimeError("observer crashed")

    good = []
    vm.tracer.add_sink(bad_sink)
    vm.tracer.add_sink(good.append)
    build_deadlock_pair(hold_cycles=800, work=20).install(vm)
    vm.run()  # must complete despite the raising sink
    metrics = vm.metrics()
    assert metrics["trace"]["sink_errors"] == 1
    assert len(calls) == 1, "raising sink is detached after first error"
    # the healthy sink kept receiving events
    assert len(good) == len(vm.tracer.events)
    from repro.core.metrics import metrics_health

    assert any("sink" in w for w in metrics_health(metrics))


# -------------------------------------------------- timeline width budget
def _timeline_vm():
    from repro.bench.workloads import build_deadlock_pair

    Asm._sync_counter = 0
    sections._section_ids = itertools.count(1)
    vm = JVM(VMOptions(mode="rollback", trace=True))
    build_deadlock_pair(hold_cycles=800, work=20).install(vm)
    vm.run()
    return vm


def test_timeline_max_width_budget():
    from repro.vm.timeline import render_timeline

    vm = _timeline_vm()
    out = render_timeline(vm, max_width=50)
    rows = [l for l in out.splitlines() if "|" in l]
    assert rows
    assert all(len(l) <= 50 for l in rows)


def test_timeline_legacy_behaviour_pinned():
    from repro.vm.timeline import render_timeline

    vm = _timeline_vm()
    # explicit width: exactly that many cells (pre-budget behaviour)
    out = render_timeline(vm, width=30)
    for line in out.splitlines():
        if "|" in line:
            assert len(line.split("|")[1]) == 30
    # max_width=None: the legacy fixed 80 cells
    legacy = render_timeline(vm, max_width=None)
    for line in legacy.splitlines():
        if "|" in line:
            assert len(line.split("|")[1]) == 80


def test_timeline_auto_respects_terminal(monkeypatch):
    import os

    from repro.vm import timeline

    monkeypatch.setattr(
        timeline.shutil, "get_terminal_size",
        lambda fallback=(80, 24): os.terminal_size((44, 24)),
    )
    vm = _timeline_vm()
    out = timeline.render_timeline(vm)
    rows = [l for l in out.splitlines() if "|" in l]
    assert rows
    assert all(len(l) <= 44 for l in rows)


# ------------------------------------------------------- bench/check flags
def test_bench_profile_and_trace_flags(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
    from repro.bench.__main__ import main as bench_main

    trace = tmp_path / "bench.json"
    rc = bench_main(["6b", "--reps", "1", "--profile",
                     "--trace-out", str(trace),
                     "--jobs", "1", "--no-cache"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "cycle profile" in captured.err
    doc = json.loads(trace.read_text())
    other = doc["otherData"]
    total = sum(
        sum(cats.values()) for cats in other["cycles_by_track"].values()
    )
    assert total == other["clock"]


def test_check_replay_trace_out(tmp_path, capsys):
    from repro.check.__main__ import main as check_main

    cex = tmp_path / "cex.json"
    rc = check_main(["--scenario", "handoff", "--bound", "1",
                     "--inject-bug", "undo-drop", "--out", str(cex),
                     "--jobs", "1"])
    assert rc == 1  # divergence found
    capsys.readouterr()
    trace = tmp_path / "replay.json"
    rc = check_main(["--replay", str(cex), "--trace-out", str(trace)])
    captured = capsys.readouterr()
    assert rc == 0
    assert "divergence reproduced" in captured.out
    doc = json.loads(trace.read_text())
    other = doc["otherData"]
    assert other["scenario"] == "replay:handoff"
    total = sum(
        sum(cats.values()) for cats in other["cycles_by_track"].values()
    )
    assert total == other["clock"]


# ------------------------------------------- episodes & time-travel CLI
def test_episodes_subcommand_renders(capsys):
    rc, out, _ = _obs(capsys, "episodes", "--scenario",
                      "medium-inversion")
    assert rc == 0
    assert "revocation" in out
    assert "reconciliation residue: 0" in out
    assert "high(10)" in out


def test_episodes_json_identical_across_jobs(capsys):
    outs = []
    for jobs in ("1", "4"):
        rc = obs_main(["episodes", "--scenario", "medium-inversion",
                       "--json", "--jobs", jobs, "--no-cache"])
        assert rc == 0
        outs.append(capsys.readouterr().out)
    assert outs[0] == outs[1]
    json.loads(outs[0])  # canonical single-document output


def test_episodes_compare_policy_table(capsys):
    """The per-policy inversion table: unmodified >> the fixes."""
    rc, out, _ = _obs(capsys, "episodes", "--scenario",
                      "medium-inversion", "--compare")
    assert rc == 0
    assert "vs-unmodified" in out
    assert "1.0000" in out    # unmodified baseline
    assert "0.0181" in out    # rollback (preemptible sections)
    assert "0.2223" in out    # classical inheritance
    assert "revocation=1" in out


def test_profile_sites_table(capsys):
    """Satellite: per-site abort/commit table with a pinned golden."""
    rc, out, _ = _obs(capsys, "profile", "--scenario",
                      "medium-inversion", "--sites", "--json")
    assert rc == 0
    (row,) = json.loads(out)
    assert row == {
        "site": "<Inversion#13>", "sections": 3, "commit": 2,
        "rollback": 1, "abandoned": 0, "leaked": 0,
        "held_cycles": 11436, "blocked_cycles": 1871,
        "contenders": 2, "abort_pct": 33.3,
    }


def test_profile_sites_renders(capsys):
    rc, out, _ = _obs(capsys, "profile", "--scenario",
                      "medium-inversion", "--sites")
    assert rc == 0
    assert "<Inversion#13>" in out
    assert "abort" in out


def test_debug_print_state_headless(capsys):
    rc, out, err = _obs(capsys, "debug", "--scenario",
                        "medium-inversion", "--episode", "1",
                        "--print-state")
    assert rc == 0
    assert "episode 1: high" in err
    assert "resolution revocation" in err
    assert "monitors:" in out
    assert "high" in out and "low" in out


def test_debug_print_state_deterministic(capsys):
    outs = []
    for _ in range(2):
        rc = obs_main(["debug", "--scenario", "medium-inversion",
                       "--episode", "1", "--print-state", "--json"]
                      + SERIAL)
        assert rc == 0
        outs.append(capsys.readouterr().out)
    assert outs[0] == outs[1]
    state = json.loads(outs[0])
    assert any(
        c["chain"][0] == "high" and c["chain"][-1] == "low"
        for c in state["blocking_chains"]
    )


def test_check_replay_opens_in_debugger(tmp_path, capsys):
    """--replay --debug: the counterexample opens positioned in the
    time-travel debugger, headless via --debug-state."""
    from repro.check.__main__ import main as check_main

    cex = tmp_path / "cex.json"
    rc = check_main(["--scenario", "handoff", "--bound", "1",
                     "--inject-bug", "undo-drop", "--out", str(cex),
                     "--jobs", "1"])
    assert rc == 1
    capsys.readouterr()
    rc = check_main(["--replay", str(cex), "--debug",
                     "--debug-seek", "0", "--debug-state"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "clock" in captured.out
    assert "monitors:" in captured.out or "thread" in captured.out
