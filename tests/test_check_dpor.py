"""Soundness battery for the DPOR + snapshot/restore checker.

DPOR is only a *reduction* — it must never change what the checker can
observe.  On scenarios small enough for full (unbounded) exhaustive
enumeration, the battery requires that the DPOR search visits a strict
subset of the schedules yet finds the identical set of final-state
fingerprints, and — with the seeded ``undo-drop`` defect — the identical
set of divergence signatures.  Explored/pruned/transition/restore counts
are pinned as goldens: any dependence-classification or sleep-set change
that silently weakens (or breaks) the reduction shows up as count drift
here before it can corrupt a real checking run.

Also covers the sleep-set edge case around revocation: a rollback
re-executing a revoked section must not resurrect a slept transition
(which would show up as duplicate trace-equivalent schedules and count
drift on ``mini-barge``, whose explored tree revokes 32 times), and the
``handoff-trio`` acceptance scenario — 6 threads, monitors + revocation —
where exhaustive enumeration is infeasible but DPOR completes.
"""

import pytest

from repro.bench.parallel import RunEngine
from repro.check.dpor import DporExplorer, SteppingRun, explore_dpor
from repro.check.explorer import explore
from repro.check.scenarios import get_scenario

#: deep enough that the exhaustive BFS never prunes a preemption — the
#: battery needs the *full* schedule space as ground truth
FULL_BOUND = 99

#: (scenario, exhaustive schedules, dpor reduction goldens)
BATTERY = [
    ("mini-handoff", 16,
     "strategy=dpor explored=4 pruned=0 transitions=26 restores=3"),
    ("mini-barge", 1488,
     "strategy=dpor explored=48 pruned=0 transitions=415 restores=47"),
    ("mini-racy", 20,
     "strategy=dpor explored=4 pruned=0 transitions=21 restores=3"),
]

#: the complete mini-handoff DPOR schedule tree, in search order — the
#: sleep-set regression golden (see TestSleepSetsUnderRevocation)
MINI_HANDOFF_TREE = [
    (0, 1, 0, 1, 1, 0, 1, 0, 0),
    (0, 0, 1, 0, 1, 1),
    (1, 0, 1, 0, 1, 0, 0),
    (1, 1, 0, 1, 0, 0),
]


@pytest.fixture(scope="module", autouse=True)
def _isolated_cache(tmp_path_factory):
    """Module-scoped cache isolation: the memoized reports below share
    one content-addressed cache, but nothing leaks into the repo tree."""
    mp = pytest.MonkeyPatch()
    mp.setenv(
        "REPRO_BENCH_CACHE_DIR",
        str(tmp_path_factory.mktemp("bench-cache")),
    )
    mp.delenv("REPRO_BENCH_JOBS", raising=False)
    yield
    mp.undo()


_MEMO: dict = {}


def _exhaustive(name: str, inject=None):
    key = ("ex", name, inject)
    if key not in _MEMO:
        _MEMO[key] = explore(
            name, FULL_BOUND, inject=inject, max_schedules=50_000
        )
    return _MEMO[key]


def _dpor(name: str, inject=None):
    key = ("dpor", name, inject)
    if key not in _MEMO:
        _MEMO[key] = explore_dpor(name, inject=inject)
    return _MEMO[key]


def _digests(report) -> set:
    return {digest for _, digest, _ in report.executions}


def _schedules(report) -> set:
    return {schedule for schedule, _, _ in report.executions}


class TestSoundnessBattery:
    @pytest.mark.parametrize(
        "name,exhaustive_count,reduction", BATTERY,
        ids=[row[0] for row in BATTERY],
    )
    def test_same_fingerprints_from_a_subset_of_schedules(
        self, name, exhaustive_count, reduction
    ):
        ex, dp = _exhaustive(name), _dpor(name)
        assert ex.schedules == exhaustive_count       # ground truth pinned
        assert dp.reduction_line() == reduction       # reduction pinned
        assert dp.explored < ex.schedules             # a real reduction
        assert _schedules(dp) <= _schedules(ex)       # subset, not invention
        assert _digests(dp) == _digests(ex)           # soundness: same states
        assert dp.distinct_states == ex.distinct_states
        assert dp.ok and ex.ok

    def test_schedule_dependent_states_all_found(self):
        """mini-racy's lost-update race has two legal final states; the
        reduced search must surface both, not just the serialized one."""
        assert _dpor("mini-racy").distinct_states == 2

    def test_policy_outcome_tables_agree_on_completion(self):
        for name, _, _ in BATTERY:
            dp = _dpor(name)
            for mode in dp.modes:
                assert set(dp.policy_outcomes[mode]) == {"completed"}


class TestInjectedBugEquivalence:
    """With the seeded defect, the reduced search must find the same
    *distinct* counterexamples as ground truth — divergences are keyed by
    their (digests, outcomes) signature, not by schedule identity, since
    many schedules witness one bug."""

    @staticmethod
    def _signatures(report) -> set:
        return {
            (
                tuple(sorted(r["digests"].items())),
                tuple(sorted(r["outcomes"].items())),
            )
            for r in report.divergences
        }

    def test_dpor_finds_the_same_counterexamples(self):
        ex = _exhaustive("mini-handoff", inject="undo-drop")
        dp = _dpor("mini-handoff", inject="undo-drop")
        assert not ex.ok and not dp.ok
        assert self._signatures(dp) == self._signatures(ex)

    def test_divergent_schedule_is_a_witness_from_ground_truth(self):
        ex = _exhaustive("mini-handoff", inject="undo-drop")
        dp = _dpor("mini-handoff", inject="undo-drop")
        divergent = {tuple(r["schedule"]) for r in dp.divergences}
        assert divergent <= {tuple(r["schedule"]) for r in ex.divergences}

    def test_problems_name_the_corrupted_counter(self):
        dp = _dpor("mini-handoff", inject="undo-drop")
        assert any(
            "MiniHandoff.counter" in p
            for r in dp.divergences for p in r["problems"]
        )


class TestSleepSetsUnderRevocation:
    """Revocation-induced rollback re-executes a critical section; the
    re-executed slice must not resurrect a transition already retired
    into an ancestor's sleep set.  A resurrection would surface as a
    duplicate (trace-equivalent) schedule in the explored tree and as
    count drift against the pinned goldens."""

    def test_mini_handoff_tree_pinned(self):
        expl = DporExplorer("mini-handoff", mode="rollback", inject=None)
        assert expl.explore() == MINI_HANDOFF_TREE
        assert (expl.explored, expl.pruned) == (4, 0)
        assert (expl.transitions, expl.restores, expl.replayed) == (26, 3, 2)

    def test_no_duplicate_schedules_despite_revocations(self):
        """mini-barge's explored tree revokes 32 times — every rollback
        re-executes a section through the dependence tracker — yet sleep
        sets still admit no two trace-equivalent executions."""
        expl = DporExplorer("mini-barge", mode="rollback", inject=None)
        schedules = expl.explore()
        assert len(schedules) == len(set(schedules)) == 48
        scenario = get_scenario("mini-barge")
        revocations = 0
        for schedule in schedules:
            run = SteppingRun(scenario, "rollback")
            assert run.drive(schedule) == "completed"
            revocations += sum(t.revocations for t in run.vm.threads)
        assert revocations == 32

    def test_search_is_deterministic(self):
        first = DporExplorer("mini-barge", mode="rollback", inject=None)
        second = DporExplorer("mini-barge", mode="rollback", inject=None)
        assert first.explore() == second.explore()
        assert (first.explored, first.pruned, first.transitions,
                first.restores, first.replayed) == \
               (second.explored, second.pruned, second.transitions,
                second.restores, second.replayed)


class TestReportDeterminism:
    def test_identical_across_worker_counts(self):
        serial = explore_dpor("mini-handoff", engine=RunEngine(jobs=1))
        fanned = explore_dpor("mini-handoff", engine=RunEngine(jobs=2))
        assert serial.reduction_line() == fanned.reduction_line()
        assert serial.executions == fanned.executions
        assert serial.policy_outcomes == fanned.policy_outcomes
        assert serial.divergences == fanned.divergences


class TestHandoffTrioAcceptance:
    """The scaling criterion: 6 threads, 3 monitors, revocation in play.
    The cross-pair product space defeats exhaustive enumeration at any
    useful budget, while DPOR's dependence tracking collapses commuting
    cross-pair orderings and checks the scenario to completion."""

    def test_exhaustive_blows_even_a_generous_budget(self):
        with pytest.raises(RuntimeError, match="exceeded"):
            explore("handoff-trio", FULL_BOUND, max_schedules=1_000)

    def test_dpor_checks_it_to_completion(self):
        report = _dpor("handoff-trio")
        assert report.reduction_line() == (
            "strategy=dpor explored=64 pruned=385 "
            "transitions=2691 restores=448"
        )
        assert report.ok
        assert report.distinct_states == 1        # serializability holds
        for mode in report.modes:
            assert report.policy_outcomes[mode] == {"completed": 64}
