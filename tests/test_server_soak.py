"""Chaos soak behaviour: the abort-storm detector driving the PR-1
degradation ladder, recovery, cross-interpreter fingerprints under
faults, the undo-drop negative control, and the campaign replay path.

The storm run is the acceptance sequence in miniature: a deterministic
abort-storm (chaos revocation storm on one hot lock) trips the detector,
which raises the overload gate and demotes the hottest site one ladder
rung; once the revocation rate collapses the gate drops again — all
replayable from the seed.
"""

from __future__ import annotations

import json

import pytest

from repro.check import final_fingerprint, fingerprint_digest
from repro.faults import campaign
from repro.server.plane import (
    CHAOS_PLAN,
    AbortStormDetector,
    ServerSpec,
    check_server_invariants,
    run_server_cell,
)
from repro.server.presets import get_preset
from repro.server.workload import build_server, expected_cycle_cap
from repro.util.rng import sweep_seed
from repro.vm.vmcore import JVM, VMOptions


def _storm_run(interp="fast", trace=True):
    config = get_preset("storm")
    seed = sweep_seed("server", config.name, 1)
    options = VMOptions(
        mode="rollback",
        scheduler="priority",
        seed=seed,
        interp=interp,
        trace=trace,
        faults=CHAOS_PLAN,
        audit_rollbacks=True,
        max_cycles=expected_cycle_cap(config, seed),
        raise_on_uncaught=False,
    )
    vm = JVM(options)
    build_server(config, seed).install(vm)
    detector = AbortStormDetector(config)
    vm.slice_hooks.append(detector)
    vm.run()
    return vm, detector, config, seed


@pytest.fixture(scope="module")
def storm_run():
    return _storm_run()


class TestAbortStormLadder:
    def test_storm_escalates_the_ladder(self, storm_run):
        """Satellite 4: an induced abort storm escalates at least one
        revocable site to priority inheritance."""
        vm, detector, _, _ = storm_run
        support = vm.metrics()["support"]
        assert support["degradations_to_inheritance"] >= 1
        entries = [e for e in detector.events if e["kind"] == "enter"]
        assert entries and entries[0]["escalated"] == ["inheritance"]

    def test_storm_recovers(self, storm_run):
        """The gate drops again once the revocation rate collapses, and
        the run still quiesces with its invariants intact."""
        vm, detector, config, seed = storm_run
        kinds = [e["kind"] for e in detector.events]
        assert "exit" in kinds
        assert kinds.index("enter") < kinds.index("exit")
        assert vm.get_static("Server", "overload") == 0
        assert check_server_invariants(vm, config, seed) == []

    def test_sequence_visible_in_trace(self, storm_run):
        """The storm -> escalation -> recovery sequence lands in the obs
        trace stream in causal order."""
        vm, _, _, _ = storm_run
        storms = vm.tracer.of_kind("abort_storm")
        degrades = vm.tracer.of_kind("degrade")
        cleared = vm.tracer.of_kind("storm_cleared")
        assert storms and degrades and cleared
        assert storms[0].details["escalated"] == "inheritance"
        assert degrades[0].details["reason"] == "abort-storm"
        assert storms[0].time <= degrades[0].time <= cleared[0].time

    def test_denied_revocations_after_escalation(self, storm_run):
        """Post-escalation the demoted site refuses revocation — the
        mechanism that actually stops the storm."""
        vm, _, _, _ = storm_run
        support = vm.metrics()["support"]
        assert support["revocations_denied_degraded"] >= 1

    def test_storm_timeline_is_reproducible(self, storm_run):
        """Same (config, seed, plan) => same storm events, cycle for
        cycle — the replay contract of the detector."""
        _, detector, _, _ = storm_run
        _, again, _, _ = _storm_run(trace=False)
        assert detector.events == again.events


class TestChaosFingerprints:
    def test_final_state_identical_across_interps(self, storm_run):
        """Satellite 4: the differential oracle's final-state fingerprint
        matches between interpreters even under the chaos plan."""
        vm, _, _, _ = storm_run
        ref_vm, _, _, _ = _storm_run(interp="reference", trace=False)
        assert fingerprint_digest(
            final_fingerprint(vm, "completed")
        ) == fingerprint_digest(final_fingerprint(ref_vm, "completed"))

    def test_chaos_cell_reports_byte_identical(self):
        reports = [
            json.dumps(
                run_server_cell(
                    ServerSpec(
                        preset="chaos-smoke", chaos=True, interp=interp
                    )
                ),
                sort_keys=True,
            )
            for interp in ("fast", "reference")
        ]
        assert reports[0] == reports[1]
        assert json.loads(reports[0])["violations"] == []


class TestNegativeControl:
    def test_undo_drop_is_detected(self):
        """A genuinely seeded defect (a rollback losing one undo entry)
        must be caught — by the auditor or the conservation checks."""
        report = run_server_cell(
            ServerSpec(preset="chaos-smoke", inject_bug="undo-drop")
        )
        assert report["violations"]
        assert report["injected"].get("undo_drop", 0) >= 1


class TestCampaignReplay:
    """Satellite 3: failures surface an exact reproduction command."""

    def _failing_scenario(self):
        return campaign.Scenario(
            name="unit-fails",
            build=lambda: __import__(
                "repro.bench.workloads", fromlist=["build_philosophers"]
            ).build_philosophers(2, rounds=1, think_cycles=50,
                                 eat_iters=5),
            plan=campaign.FaultPlan(),
            check=lambda vm: ["synthetic violation"],
        )

    def test_failures_carry_exact_vm_seed(self, monkeypatch):
        monkeypatch.setattr(
            campaign, "_scenarios", lambda: [self._failing_scenario()]
        )
        report = campaign.run_campaign(2)
        assert report["violations"] == 2
        assert len(report["failures"]) == 2
        failure = report["failures"][0]
        assert failure["scenario"] == "unit-fails"
        assert failure["seed_index"] == 1
        assert failure["vm_seed"] == hex(
            sweep_seed("campaign", "unit-fails", 1)
        )
        assert failure["violations"] == ["synthetic violation"]

    def test_main_prints_replay_command(self, monkeypatch, capsys):
        canned = {
            "seeds": 1, "scenarios": {}, "violations": 1,
            "failures": [{
                "scenario": "unit-fails", "seed_index": 3,
                "vm_seed": "0xabc", "outcome": "completed",
                "violations": ["boom"],
            }],
        }
        monkeypatch.setattr(
            campaign, "run_campaign",
            lambda seeds, scenario_filter=None, engine=None,
            interp="fast": canned,
        )
        rc = campaign.main(["--seeds", "1", "--jobs", "1"])
        err = capsys.readouterr().err
        assert rc == 1
        assert (
            "REPLAY: PYTHONPATH=src python -m repro.faults.campaign "
            "--scenario unit-fails --replay 3 --interp fast"
            "  # vm seed 0xabc"
        ) in err

    def test_replay_command_roundtrips_interp(self, monkeypatch, capsys):
        """The REPLAY line must carry every flag shaping the failing
        cell: a reference-engine campaign failure has to replay on the
        reference engine, not silently fall back to the default."""
        canned = {
            "seeds": 1, "scenarios": {}, "violations": 1,
            "failures": [{
                "scenario": "unit-fails", "seed_index": 3,
                "vm_seed": "0xabc", "outcome": "completed",
                "violations": ["boom"],
            }],
        }
        monkeypatch.setattr(
            campaign, "run_campaign",
            lambda seeds, scenario_filter=None, engine=None,
            interp="fast": canned,
        )
        rc = campaign.main(
            ["--seeds", "1", "--jobs", "1", "--interp", "reference"]
        )
        err = capsys.readouterr().err
        assert rc == 1
        replay = next(
            line for line in err.splitlines()
            if line.startswith("REPLAY: ")
        )
        assert "--interp reference" in replay
        # the emitted command parses back through the campaign CLI into
        # exactly the failing cell's identity
        argv = replay.split("#")[0].split("python -m repro.faults.campaign")[
            1
        ].split()
        monkeypatch.setattr(
            campaign, "replay_cell",
            lambda name, index, interp="fast": {
                "violations": [(name, index, interp)]
            },
        )
        rc = campaign.main(argv)
        fragment = json.loads(capsys.readouterr().out)
        assert fragment["violations"] == [["unit-fails", 3, "reference"]]

    def test_replay_flag_reruns_one_cell(self, monkeypatch, capsys):
        monkeypatch.setattr(
            campaign, "_scenarios", lambda: [self._failing_scenario()]
        )
        rc = campaign.main(
            ["--scenario", "unit-fails", "--replay", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        fragment = json.loads(out)
        assert fragment["violations"] == ["synthetic violation"]

    def test_replay_honours_interp_flag(self, monkeypatch, capsys):
        seen = {}
        real_run_one = campaign.run_one

        def spy(scenario, index, *, interp="fast"):
            seen["interp"] = interp
            return real_run_one(scenario, index, interp=interp)

        monkeypatch.setattr(
            campaign, "_scenarios", lambda: [self._failing_scenario()]
        )
        monkeypatch.setattr(campaign, "run_one", spy)
        campaign.main(
            ["--scenario", "unit-fails", "--replay", "1",
             "--interp", "reference"]
        )
        capsys.readouterr()
        assert seen["interp"] == "reference"

    def test_cell_key_distinguishes_interp(self):
        """A cached fast-engine fragment must never be served for a
        reference-engine request (stale-cache class of bugs)."""
        fast = campaign._cell_key(("storm-philosophers", 1, "fast"))
        ref = campaign._cell_key(("storm-philosophers", 1, "reference"))
        assert fast != ref

    def test_fragments_identical_across_interp(self):
        """The campaign's determinism contract extends to the engine:
        one (scenario, seed) cell yields a byte-identical fragment on
        either interpreter."""
        scenario = {
            s.name: s for s in campaign._scenarios()
        }["storm-philosophers"]
        fragments = [
            json.dumps(
                campaign.run_one(scenario, 1, interp=interp),
                sort_keys=True,
            )
            for interp in ("fast", "reference")
        ]
        assert fragments[0] == fragments[1]

    def test_replay_requires_scenario(self):
        with pytest.raises(SystemExit):
            campaign.main(["--replay", "1"])

    def test_server_chaos_scenario_clean(self):
        scenario = {
            s.name: s for s in campaign._scenarios()
        }["server-chaos"]
        fragment = campaign.run_one(scenario, 1)
        assert fragment["outcome"] == "completed"
        assert fragment["violations"] == []
        assert fragment["injected"].get("revocation_storm", 0) >= 1
