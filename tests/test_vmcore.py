"""Tests for the JVM facade: options, loading, linking, metrics, tracing."""

import pytest

from repro import (
    Asm,
    ClassDef,
    CostModel,
    FieldDef,
    LinkError,
    StarvationError,
    VMOptions,
    VMStateError,
)
from repro.vm import bytecode as bc
from repro.vm.vmcore import JVM

from conftest import build_class, make_vm


def trivial_class(name="T"):
    a = Asm("run", argc=0)
    a.ret()
    return ClassDef(name, methods=[a.build()])


class TestOptions:
    def test_defaults(self):
        opts = VMOptions()
        assert opts.mode == "unmodified"
        assert not opts.modified

    def test_modified_flag(self):
        assert VMOptions(mode="rollback").modified
        assert not VMOptions(mode="inheritance").modified

    @pytest.mark.parametrize("field,value", [
        ("mode", "fancy"),
        ("scheduler", "lottery"),
        ("detection", "psychic"),
    ])
    def test_invalid_options_rejected(self, field, value):
        with pytest.raises(ValueError):
            VMOptions(**{field: value})

    def test_with_creates_variant(self):
        opts = VMOptions(seed=1)
        opts2 = opts.with_(seed=2)
        assert opts.seed == 1 and opts2.seed == 2

    def test_kwargs_shortcut(self):
        vm = JVM(mode="rollback", seed=9)
        assert vm.options.mode == "rollback"
        assert vm.options.seed == 9


class TestLoading:
    def test_duplicate_class_rejected(self, vm):
        vm.load(trivial_class())
        with pytest.raises(LinkError):
            vm.load(trivial_class())

    def test_builtin_exceptions_preloaded(self, vm):
        assert "Throwable" in vm.classes
        assert "NullPointerException" in vm.classes

    def test_linking_assigns_costs_and_ypoints(self, vm):
        a = Asm("run", argc=0)
        top = a.label()
        a.place(top)
        i = a.local()
        a.iinc(i, 1)
        a.load(i).const(5).lt().if_(top)
        a.ret()
        loaded = vm.load(ClassDef("L", methods=[a.build()]))
        code = loaded.method("run").code
        assert all(ins.cost >= 0 for ins in code)
        backward_if = code[4]
        assert backward_if.op == bc.IF and backward_if.ypoint

    def test_invoke_is_yield_point_but_impl_calls_are_not(self):
        vm = make_vm("rollback")
        callee = Asm("work", argc=0, synchronized=True)
        callee.ret()
        caller = Asm("main", argc=0)
        caller.invoke("C", "work", 0)
        caller.ret()
        loaded = vm.load(ClassDef("C", methods=[callee.build(),
                                                caller.build()]))
        main_invoke = next(
            ins for ins in loaded.method("main").code
            if ins.op == bc.INVOKE
        )
        assert main_invoke.ypoint
        wrapper_invoke = next(
            ins for ins in loaded.method("work").code
            if ins.op == bc.INVOKE
        )
        assert not wrapper_invoke.ypoint  # inlined $impl call
        assert wrapper_invoke.cost == 0


class TestLifecycle:
    def test_spawn_after_run_rejected(self, vm):
        vm.load(trivial_class())
        vm.spawn("T", "run", name="a")
        vm.run()
        with pytest.raises(VMStateError):
            vm.spawn("T", "run", name="b")

    def test_run_twice_rejected(self, vm):
        vm.load(trivial_class())
        vm.run()
        with pytest.raises(VMStateError):
            vm.run()

    def test_spawn_arity_checked(self, vm):
        vm.load(trivial_class())
        with pytest.raises(LinkError):
            vm.spawn("T", "run", args=[1, 2])

    def test_thread_named_lookup(self, vm):
        vm.load(trivial_class())
        t = vm.spawn("T", "run", name="zed")
        assert vm.thread_named("zed") is t
        with pytest.raises(VMStateError):
            vm.thread_named("nope")

    def test_starvation_guard(self):
        a = Asm("run", argc=0)
        top = a.label()
        a.place(top)
        a.goto(top)  # infinite loop
        cls = ClassDef("T", methods=[a.build()])
        vm = make_vm(max_cycles=100_000)
        vm.load(cls)
        vm.spawn("T", "run", name="spin")
        with pytest.raises(StarvationError):
            vm.run()


class TestCostModelIntegration:
    def test_scaled_cost_model_slows_virtual_time(self):
        def elapsed(cm):
            a = Asm("run", argc=0)
            i = a.local()
            a.for_range(i, lambda: a.const(1_000), lambda: a.const(0).pop())
            a.ret()
            vm = JVM(VMOptions(cost_model=cm))
            vm.load(ClassDef("T", methods=[a.build()]))
            vm.spawn("T", "run", name="t")
            vm.run()
            return vm.clock.now

        base = elapsed(CostModel())
        doubled = elapsed(CostModel().scaled(2.0))
        assert doubled > base * 1.7


class TestMetrics:
    def test_schema_identical_across_modes(self):
        for mode in ("unmodified", "rollback"):
            vm = make_vm(mode)
            vm.load(trivial_class())
            vm.spawn("T", "run", name="t")
            vm.run()
            m = vm.metrics()
            assert {"mode", "elapsed_cycles", "context_switches",
                    "slices", "threads", "support"} <= set(m)
            assert "t" in m["threads"]

    def test_per_thread_fields(self, vm):
        vm.load(trivial_class())
        vm.spawn("T", "run", name="t")
        vm.run()
        t = vm.metrics()["threads"]["t"]
        assert t["state"] == "terminated"
        assert t["instructions"] >= 1
        assert t["end_time"] >= t["start_time"]

    def test_all_terminated(self, vm):
        vm.load(trivial_class())
        vm.spawn("T", "run", name="t")
        assert not vm.all_terminated()
        vm.run()
        assert vm.all_terminated()


class TestTracing:
    def test_disabled_by_default_outside_tests(self):
        vm = JVM(VMOptions())
        assert not vm.tracer.enabled
        vm.load(trivial_class())
        vm.spawn("T", "run", name="t")
        vm.run()
        assert vm.tracer.events == []

    def test_events_recorded_when_enabled(self, vm):
        vm.load(trivial_class())
        vm.spawn("T", "run", name="t")
        vm.run()
        kinds = {e.kind for e in vm.tracer.events}
        assert "spawn" in kinds and "exit" in kinds

    def test_trace_query_helpers(self, vm):
        vm.load(trivial_class())
        vm.spawn("T", "run", name="t")
        vm.run()
        assert vm.tracer.count("spawn") == 1
        assert vm.tracer.first("spawn").thread == "t"
        assert vm.tracer.last("exit").thread == "t"
        assert vm.tracer.for_thread("t")
        assert vm.tracer.of_kind("spawn", "exit")
        rendered = vm.tracer.render()
        assert "spawn" in rendered

    def test_capacity_limit(self):
        from repro.vm.tracing import Tracer

        tr = Tracer(enabled=True, capacity=3)
        for i in range(5):
            tr.record(i, "k", None)
        assert len(tr.events) == 3
        assert tr.dropped == 2

    def test_between(self):
        from repro.vm.tracing import Tracer

        tr = Tracer(enabled=True)
        for i in range(10):
            tr.record(i * 10, "k", None)
        assert len(tr.between(20, 50)) == 3


class TestGuestExceptionFactory:
    def test_known_class(self, vm):
        exc = vm.make_guest_exception("ArithmeticException", "boom")
        assert exc.classdef.name == "ArithmeticException"
        assert exc.fields["message"] == "boom"

    def test_unknown_class_falls_back(self, vm):
        exc = vm.make_guest_exception("NoSuchClass", "boom")
        assert exc.classdef.name == "RuntimeException"


class TestHostAccess:
    def test_new_object_and_array(self, vm):
        vm.load(ClassDef("O", fields=[FieldDef("x", "int")]))
        obj = vm.new_object("O")
        assert obj.classdef.name == "O"
        arr = vm.new_array(3, fill=7)
        assert arr.snapshot() == [7, 7, 7]

    def test_static_roundtrip(self, vm):
        vm.load(ClassDef("S", fields=[
            FieldDef("x", "int", is_static=True)
        ]))
        vm.set_static("S", "x", 42)
        assert vm.get_static("S", "x") == 42
