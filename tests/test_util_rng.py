"""Unit tests for the deterministic RNG."""

import math

import pytest

from repro.util.rng import (
    SWEEP_BASE,
    DeterministicRng,
    derive_seed,
    sweep_seed,
)


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(123)
        b = DeterministicRng(123)
        assert [a.next_u64() for _ in range(50)] == [
            b.next_u64() for _ in range(50)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.next_u64() for _ in range(8)] != [
            b.next_u64() for _ in range(8)
        ]

    def test_zero_seed_is_usable(self):
        rng = DeterministicRng(0)
        assert rng.next_u64() != rng.next_u64()

    def test_state_snapshot_roundtrip(self):
        rng = DeterministicRng(7)
        rng.next_u64()
        state = rng.getstate()
        first = [rng.next_u64() for _ in range(5)]
        rng.setstate(state)
        assert [rng.next_u64() for _ in range(5)] == first


class TestDraws:
    def test_randint_bounds(self):
        rng = DeterministicRng(9)
        draws = [rng.randint(3, 9) for _ in range(500)]
        assert min(draws) >= 3 and max(draws) <= 9
        assert set(draws) == set(range(3, 10))  # all values reachable

    def test_randint_single_value(self):
        rng = DeterministicRng(9)
        assert rng.randint(4, 4) == 4

    def test_randint_empty_range_raises(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).randint(5, 4)

    def test_random_in_unit_interval(self):
        rng = DeterministicRng(11)
        draws = [rng.random() for _ in range(1000)]
        assert all(0.0 <= x < 1.0 for x in draws)
        assert abs(sum(draws) / len(draws) - 0.5) < 0.05

    def test_choice(self):
        rng = DeterministicRng(13)
        seq = ["a", "b", "c"]
        assert set(rng.choice(seq) for _ in range(100)) == {"a", "b", "c"}

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).choice([])

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(17)
        xs = list(range(20))
        ys = list(xs)
        rng.shuffle(ys)
        assert sorted(ys) == xs
        assert ys != xs  # overwhelmingly likely with 20 elements

    def test_exponential_mean(self):
        rng = DeterministicRng(19)
        draws = [rng.exponential(100.0) for _ in range(5000)]
        assert all(d >= 0 for d in draws)
        assert math.isclose(sum(draws) / len(draws), 100.0, rel_tol=0.1)

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).exponential(0)


class TestDerivation:
    def test_derive_is_deterministic(self):
        assert derive_seed(42, "thread", 3) == derive_seed(42, "thread", 3)

    def test_derive_depends_on_path(self):
        seeds = {
            derive_seed(42),
            derive_seed(42, "thread", 3),
            derive_seed(42, "thread", 4),
            derive_seed(42, "rep", 3),
            derive_seed(43, "thread", 3),
        }
        assert len(seeds) == 5

    def test_derive_order_sensitive(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_derive_pinned_golden_values(self):
        """Seed derivation is a cross-version, cross-process contract:
        these exact values must never change (they anchor every
        benchmark number and the parallel engine's cache keys)."""
        assert derive_seed(42, "thread", 3) == 3168927947649419450
        assert derive_seed(0x5EED, "rep", 1) == 18408472694590742212
        assert derive_seed(7, b"x") == 9223092079984049216

    def test_derive_rejects_unstable_path_types(self):
        """Reprs of floats, enums and dataclasses are not stable
        contracts; such path elements must be rejected loudly."""
        import enum
        from dataclasses import dataclass

        class Color(enum.Enum):
            RED = 1

        @dataclass
        class Box:
            x: int = 0

        for bad in (1.5, None, Color.RED, Box(), ("a",), ["a"], {"a": 1}):
            with pytest.raises(TypeError):
                derive_seed(42, bad)

    def test_derive_accepts_str_int_bytes(self):
        assert derive_seed(1, "s", 2, b"b") == derive_seed(1, "s", 2, b"b")

    def test_spawn_creates_independent_stream(self):
        parent = DeterministicRng(5)
        child = parent.spawn("x")
        parent_draws = [parent.next_u64() for _ in range(4)]
        child_draws = [child.next_u64() for _ in range(4)]
        assert parent_draws != child_draws
        # respawning yields the same child stream
        child2 = DeterministicRng(5).spawn("x")
        assert [child2.next_u64() for _ in range(4)] == child_draws


class TestSweepSeedConvention:
    """The repo-wide seed-namespace convention: every sweep-style tool
    derives per-run seeds as ``sweep_seed(namespace, scenario, index)``.
    The fault campaign uses ``("campaign", scenario.name, i)`` with ``i``
    1-based; the schedule checker's random walks use
    ``("check", scenario, k)`` with ``k`` 0-based."""

    def test_is_derive_seed_under_the_shared_base(self):
        assert SWEEP_BASE == 0x5EED
        assert sweep_seed("campaign", "pri-handoff", 3) == derive_seed(
            SWEEP_BASE, "campaign", "pri-handoff", 3
        )

    def test_namespaces_do_not_collide(self):
        assert sweep_seed("campaign", "handoff", 1) != sweep_seed(
            "check", "handoff", 1
        )

    def test_pinned_golden_values(self):
        """Cross-tool contract: campaign runs and check walks are cached
        and replayed by these exact seeds; they must never change."""
        assert (
            sweep_seed("campaign", "storm-philosophers", 1)
            == 11269112642143351037
        )
        assert (
            sweep_seed("campaign", "pri-handoff", 3)
            == 9584731509515884707
        )
        assert sweep_seed("check", "handoff", 0) == 12093481353707224010
        assert sweep_seed("check", "handoff", 1) == 12093482453218852221

    def test_campaign_uses_the_convention(self, monkeypatch):
        """The campaign's per-run VM seed is exactly the convention's
        derivation — no tool-private salting."""
        import repro.faults.campaign as campaign

        calls = []

        def spy(namespace, scenario, index, **kwargs):
            calls.append((namespace, scenario, index))
            return sweep_seed(namespace, scenario, index, **kwargs)

        monkeypatch.setattr(campaign, "sweep_seed", spy)
        scenario = campaign._scenarios()[0]
        campaign.run_one(scenario, 1)
        assert calls == [("campaign", scenario.name, 1)]
