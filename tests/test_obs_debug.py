"""Time-travel debugger: checkpoint streams, restore + deterministic
re-execution, seek fidelity (the ISSUE's byte-identity acceptance),
the inspector, and the artifact-store / engine lanes."""

from __future__ import annotations

import pytest

from repro.check.oracle import final_fingerprint, fingerprint_digest
from repro.obs.capture import ObsSpec, capture_run
from repro.obs.debug import (
    CHECKPOINTS_FORMAT,
    DebugSession,
    record,
    record_cached,
    record_with_engine,
    recording_key,
    render_state,
)

SPEC = ObsSpec(scenario="medium-inversion")


@pytest.fixture(scope="module")
def recording():
    return record(SPEC, interval=4)


@pytest.fixture(scope="module")
def straight():
    """The same spec run straight to the end, no checkpoints — the
    reference timeline every seek must land back on."""
    from repro.obs.debug import _build_vm

    vm, _, _ = _build_vm(SPEC)
    vm.begin_run()
    while vm.scheduler.step():
        pass
    return vm


# ------------------------------------------------------------- recording
def test_recording_artifact_matches_capture(recording):
    """Recording a run must not perturb it: the embedded artifact is
    byte-identical to a plain capture of the same spec."""
    artifact = capture_run(SPEC)
    for key in ("spans_jsonl", "chrome_json", "folded", "clock",
                "outcome", "metrics", "summary"):
        assert recording.artifact[key] == artifact[key], key
    assert recording.clock == artifact["clock"]
    assert recording.outcome == artifact["outcome"]


def test_checkpoint_stream_shape(recording):
    clocks = [c.clock_now for c in recording.checkpoints]
    assert clocks == sorted(clocks)
    assert len(recording.checkpoints) > 2  # interval=4 → several snaps
    b = recording.boundaries
    assert b == sorted(set(b))
    assert b[-1] == recording.clock


def test_interval_validation():
    with pytest.raises(ValueError):
        record(SPEC, interval=0)


# ---------------------------------------------------------- seek fidelity
@pytest.mark.parametrize("interp", ["fast", "reference"])
def test_seek_then_run_to_end_matches_straight_run(interp, straight):
    """ISSUE acceptance: seek to cycle T, run to the end — clock, trace,
    metrics and final fingerprint byte-identical to the straight run."""
    spec = ObsSpec(scenario="medium-inversion", interp=interp)
    rec = record(spec, interval=4)
    session = DebugSession(rec)
    session.seek(rec.clock // 2)
    assert 0 < session.now < rec.clock
    while session._step_once():
        pass
    vm = session.vm
    assert vm.clock.now == straight.clock.now == rec.clock
    assert vm.metrics() == straight.metrics()
    assert vm.tracer.render() == straight.tracer.render()
    fp = final_fingerprint(vm, rec.outcome)
    ref = final_fingerprint(straight, rec.outcome)
    assert fp == ref
    assert fingerprint_digest(fp) == fingerprint_digest(ref)


def test_seek_into_rollback_episode_then_drain(straight):
    """The mid-rollback seek target: land inside the inversion window,
    observe the blocked chain, then drain to the same end state."""
    rec = record(ObsSpec(scenario="medium-inversion"), interval=4)
    session = DebugSession(rec)
    episode = session.seek_episode(1)
    assert episode["resolution"] == "revocation"
    assert episode["start"] <= session.now <= episode["end"]
    state = session.state()
    high = next(t for t in state["threads"] if t["name"] == "high")
    assert high["state"] == "blocked"
    assert high["blocked_on"] == episode["mon"]
    (chain,) = [
        c for c in state["blocking_chains"] if c["chain"][0] == "high"
    ]
    assert chain["chain"][-1] == "low"
    assert not chain["cyclic"]
    # an active blocked span covers this cycle
    assert any(
        s["kind"] == "blocked" and s["thread"] == "high"
        for s in state["active_spans"]
    )
    while session._step_once():
        pass
    assert session.now == rec.clock
    assert session.vm.metrics() == straight.metrics()


# --------------------------------------------------------------- movement
def test_step_until_back_semantics(recording):
    session = DebugSession(recording)
    assert session.now == recording.boundaries[0]
    t1 = session.step()
    assert t1 >= recording.boundaries[0]
    mid = recording.clock // 2
    t2 = session.until(mid)
    assert t2 >= mid or t2 == recording.clock
    t3 = session.back()
    assert t3 < t2
    # until backwards is a seek
    t4 = session.until(recording.boundaries[0])
    assert t4 <= t3
    # seek past the end clamps to the end of the recorded timeline
    assert session.seek(recording.clock + 10_000) == recording.clock


def test_sessions_are_isolated(recording):
    a = DebugSession(recording)
    b = DebugSession(recording)
    a.seek(recording.clock)
    assert b.now == recording.boundaries[0]
    assert a.now == recording.clock
    b.step(3)
    assert a.now == recording.clock  # untouched


def test_seek_episode_out_of_range(recording):
    session = DebugSession(recording)
    with pytest.raises(IndexError):
        session.seek_episode(2)
    with pytest.raises(IndexError):
        session.seek_episode(0)


def test_render_state_one_screen(recording):
    session = DebugSession(recording)
    session.seek_episode(1)
    text = render_state(session.state())
    assert "clock" in text and "monitors:" in text
    assert "high" in text and "low" in text


# --------------------------------------------------- store / engine lanes
def test_record_cached_roundtrip(tmp_path):
    from repro.bench.parallel import ResultCache

    cache = ResultCache(tmp_path)
    first = record_cached(SPEC, interval=32, cache=cache)
    key = recording_key(SPEC, 32)
    stored = cache.get(key)
    assert stored["format"] == CHECKPOINTS_FORMAT
    assert stored["checkpoints"] == len(first.checkpoints)
    second = record_cached(SPEC, interval=32, cache=cache)
    assert second.artifact == first.artifact
    assert second.boundaries == first.boundaries
    assert len(second.checkpoints) == len(first.checkpoints)
    # a session over the restored stream still seeks correctly
    session = DebugSession(second)
    assert session.seek(second.clock) == second.clock


def test_record_with_engine_pool_matches_serial():
    from repro.bench.parallel import RunEngine

    serial = record_with_engine(SPEC, 32, engine=RunEngine(jobs=1))
    pooled = record_with_engine(SPEC, 32, engine=RunEngine(jobs=2))
    assert serial.artifact == pooled.artifact
    assert serial.boundaries == pooled.boundaries


# ------------------------------------------------------------ replay lane
@pytest.fixture(scope="module")
def counterexample():
    from repro.check.explorer import CheckItem, run_check_cell
    from repro.check.oracle import counterexample_payload

    item = CheckItem(scenario="handoff", prefix=(0, 1),
                     inject="undo-drop")
    result = run_check_cell(item)
    return counterexample_payload(
        scenario="handoff", bound=1, modes=item.modes,
        inject="undo-drop", result=result,
        minimized=list(item.prefix),
    )


def test_record_replay_matches_capture_replay(counterexample):
    from repro.obs.capture import capture_replay
    from repro.obs.debug import record_replay

    rec = record_replay(counterexample, interval=8)
    artifact = capture_replay(counterexample)
    for key in ("spans_jsonl", "chrome_json", "clock", "outcome"):
        assert rec.artifact[key] == artifact[key], key
    assert rec.schedule == tuple(counterexample["minimized_schedule"])


def test_replay_session_seek_reproduces_schedule(counterexample):
    """Restoring mid-replay re-arms the decision hook with the rest of
    the recorded prefix, so the drained timeline is the counterexample's."""
    from repro.obs.debug import record_replay

    from repro.obs.capture import build_replay_vm

    rec = record_replay(counterexample, interval=8)
    session = DebugSession(rec)
    session.seek(rec.clock // 2)
    while session._step_once():
        pass
    assert session.now == rec.clock
    _, vm, _, _ = build_replay_vm(counterexample)
    vm.begin_run()
    straight = DebugSession.__new__(DebugSession)
    straight.vm = vm  # reuse the exception-absorbing drain helper
    while straight._step_once():
        pass
    assert vm.clock.now == rec.clock
    assert session.vm.tracer.render() == vm.tracer.render()
