"""Tests for the parallel run engine (repro.bench.parallel).

The engine's contract: execution strategy (worker count, cache) must never
reach the measured results — serial and parallel sweeps render
byte-identical reports, and a cache hit returns exactly what the run
would have computed.
"""

from __future__ import annotations

import pickle

import pytest

from repro.bench import parallel as par
from repro.bench.figures import FigurePanel, run_panel
from repro.bench.harness import compare_modes, run_microbench
from repro.bench.microbench import MicrobenchConfig
from repro.bench.parallel import (
    ResultCache,
    RunEngine,
    RunSpec,
    cache_key,
    execute_spec,
    spec_key,
)
from repro.bench.report import panel_json, render_engine_stats, render_panel
from repro.faults.campaign import run_campaign
from repro.vm.clock import CostModel
from repro.vm.vmcore import VMOptions

#: quick configuration: full engine path, small virtual workload
TINY = MicrobenchConfig(
    high_threads=1,
    low_threads=2,
    iters_high=20,
    iters_low=60,
    sections=2,
    seed=77,
)

PANEL_KW = dict(repetitions=2, write_ratios=(0, 100))


def tiny_panel(engine, monkeypatch) -> object:
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.2")
    return run_panel(FigurePanel(5, "a"), engine=engine, **PANEL_KW)


# -------------------------------------------------------------- equivalence
class TestSerialParallelEquivalence:
    def test_fig5_panel_reports_byte_identical(self, monkeypatch):
        serial = tiny_panel(RunEngine(jobs=1), monkeypatch)
        pooled = tiny_panel(RunEngine(jobs=4), monkeypatch)
        assert render_panel(serial) == render_panel(pooled)
        assert panel_json(serial) == panel_json(pooled)

    def test_compare_modes_engine_matches_default(self):
        default = compare_modes(TINY, repetitions=2)
        pooled = compare_modes(TINY, repetitions=2, engine=RunEngine(jobs=4))
        for mode in ("unmodified", "rollback"):
            assert default.runs[mode] == pooled.runs[mode]

    def test_campaign_report_identical_across_jobs(self):
        serial = run_campaign(
            2, "storm-philosophers", engine=RunEngine(jobs=1)
        )
        pooled = run_campaign(
            2, "storm-philosophers", engine=RunEngine(jobs=2)
        )
        assert serial == pooled

    def test_map_preserves_input_order(self):
        engine = RunEngine(jobs=3)
        items = [RunSpec(config=TINY, mode=m) for m in
                 ("unmodified", "rollback", "unmodified", "rollback")]
        results = engine.map(execute_spec, items)
        assert [r.mode for r in results] == [s.mode for s in items]
        assert results[0] == results[2]


# -------------------------------------------------------------------- cache
class TestResultCache:
    def test_hit_on_unchanged_inputs(self, tmp_path):
        first = RunEngine(jobs=1, cache=ResultCache(tmp_path))
        a = compare_modes(TINY, repetitions=2, engine=first)
        assert first.last_stats.cache_hits == 0
        assert first.last_stats.executed == 4

        second = RunEngine(jobs=1, cache=ResultCache(tmp_path))
        b = compare_modes(TINY, repetitions=2, engine=second)
        assert second.last_stats.cache_hits == 4
        assert second.last_stats.executed == 0
        assert a.runs == b.runs

    def test_cached_result_equals_direct_run(self, tmp_path):
        engine = RunEngine(jobs=1, cache=ResultCache(tmp_path))
        compare_modes(TINY, repetitions=1, engine=engine)
        cached = compare_modes(TINY, repetitions=1, engine=engine)
        direct = compare_modes(TINY, repetitions=1)
        assert cached.runs == direct.runs

    def test_miss_when_cost_model_changes(self, tmp_path):
        cache = ResultCache(tmp_path)
        e1 = RunEngine(jobs=1, cache=cache)
        compare_modes(TINY, repetitions=1, engine=e1)
        e2 = RunEngine(jobs=1, cache=cache)
        compare_modes(
            TINY, repetitions=1, engine=e2,
            cost_model=CostModel().scaled(2.0),
        )
        assert e2.last_stats.cache_hits == 0
        assert e2.last_stats.executed == 2

    def test_miss_when_source_digest_changes(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        e1 = RunEngine(jobs=1, cache=cache)
        compare_modes(TINY, repetitions=1, engine=e1)
        # a changed source tree must invalidate every prior entry
        monkeypatch.setattr(
            par, "_SOURCE_DIGEST", "0" * 64
        )
        e2 = RunEngine(jobs=1, cache=cache)
        compare_modes(TINY, repetitions=1, engine=e2)
        assert e2.last_stats.cache_hits == 0
        assert e2.last_stats.executed == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = spec_key(RunSpec(config=TINY))
        cache.put(key, {"ok": True})
        cache._path(key).write_bytes(b"not a pickle")
        assert cache.get(key) is None


class TestCacheIntegrity:
    """Digest-verified reads: a damaged store recomputes, never poisons."""

    KEY = "ab" + "0" * 62

    def _entry(self, tmp_path) -> tuple[ResultCache, bytes]:
        cache = ResultCache(tmp_path)
        cache.put(self.KEY, {"value": 123})
        return cache, cache._path(self.KEY).read_bytes()

    def test_roundtrip_bytes_and_digest(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = cache.put_bytes(self.KEY, b"payload-bytes")
        assert digest == par.payload_digest(b"payload-bytes")
        assert cache.get_bytes(self.KEY) == (b"payload-bytes", digest)

    def test_flipped_payload_byte_detected(self, tmp_path, caplog):
        cache, data = self._entry(tmp_path)
        corrupted = data[:-1] + bytes([data[-1] ^ 0xFF])
        cache._path(self.KEY).write_bytes(corrupted)
        with caplog.at_level("WARNING", logger="repro.bench.cache"):
            assert cache.get(self.KEY) is None
        assert "corrupt" in caplog.text
        assert "digest mismatch" in caplog.text
        # the damaged file was removed so a recompute can rewrite it
        assert not cache._path(self.KEY).exists()

    def test_truncated_entry_detected(self, tmp_path, caplog):
        cache, data = self._entry(tmp_path)
        cache._path(self.KEY).write_bytes(data[: len(data) - 5])
        with caplog.at_level("WARNING", logger="repro.bench.cache"):
            assert cache.get(self.KEY) is None
        assert "corrupt" in caplog.text
        assert not cache._path(self.KEY).exists()

    def test_foreign_header_detected(self, tmp_path, caplog):
        cache, _ = self._entry(tmp_path)
        cache._path(self.KEY).write_bytes(b"totally foreign contents")
        with caplog.at_level("WARNING", logger="repro.bench.cache"):
            assert cache.get(self.KEY) is None
        assert "bad or missing header" in caplog.text

    def test_corruption_falls_back_to_recompute(self, tmp_path, caplog):
        """End-to-end: corrupt a real run's entry mid-campaign and the
        engine silently (but loudly-logged) recomputes the exact run."""
        cache = ResultCache(tmp_path)
        engine = RunEngine(jobs=1, cache=cache)
        clean = compare_modes(TINY, repetitions=1, engine=engine)
        # damage every stored entry
        for path in tmp_path.rglob("*.pkl"):
            data = path.read_bytes()
            path.write_bytes(data[:-3] + b"\x00\x00\x00")
        engine2 = RunEngine(jobs=1, cache=cache)
        with caplog.at_level("WARNING", logger="repro.bench.cache"):
            recomputed = compare_modes(TINY, repetitions=1, engine=engine2)
        assert "corrupt" in caplog.text
        assert engine2.last_stats.cache_hits == 0
        assert engine2.last_stats.executed == 2
        assert recomputed.runs == clean.runs
        # the recompute rewrote valid entries: third pass is all hits
        engine3 = RunEngine(jobs=1, cache=cache)
        compare_modes(TINY, repetitions=1, engine=engine3)
        assert engine3.last_stats.cache_hits == 2

    def test_put_bytes_rejects_mismatched_claim(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.put_bytes(self.KEY, b"data", digest="0" * 64)


# ---------------------------------------------------------------- cache keys
class TestCacheKeys:
    def test_stable_across_calls(self):
        spec = RunSpec(config=TINY, mode="rollback")
        assert spec_key(spec) == spec_key(spec)

    def test_sensitive_to_each_input(self):
        base = RunSpec(config=TINY)
        variants = [
            RunSpec(config=TINY, mode="rollback"),
            RunSpec(config=MicrobenchConfig(seed=78)),
            RunSpec(config=TINY, options=VMOptions(scheduler="priority")),
            RunSpec(config=TINY, cost_model=CostModel(quantum=9_000)),
        ]
        keys = {spec_key(s) for s in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_rejects_unencodable_objects(self):
        with pytest.raises(TypeError):
            cache_key(object())
        with pytest.raises(TypeError):
            cache_key({1: "non-str key"})

    def test_distinguishes_value_shapes(self):
        assert cache_key("ab", "c") != cache_key("a", "bc")
        assert cache_key(1) != cache_key("1")
        assert cache_key(True) != cache_key(1)
        assert cache_key([1, 2]) != cache_key([2, 1])


# ----------------------------------------------------------------- plumbing
class TestPickling:
    def test_run_result_roundtrip(self):
        result = run_microbench(TINY)
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result
        assert clone.metrics == result.metrics

    def test_spec_roundtrip(self):
        spec = RunSpec(
            config=TINY,
            mode="rollback",
            options=VMOptions(mode="rollback", seed=9),
            cost_model=CostModel().scaled(0.5),
        )
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestEngineConfig:
    def test_from_env_jobs_and_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "3")
        monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", str(tmp_path))
        engine = RunEngine.from_env()
        assert engine.jobs == 3
        assert engine.cache is not None
        assert engine.cache.directory == tmp_path

    def test_from_env_cache_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", "0")
        assert RunEngine.from_env().cache is None

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            RunEngine(jobs=0)

    def test_stats_accumulate_and_render(self, tmp_path):
        engine = RunEngine(jobs=1, cache=ResultCache(tmp_path))
        compare_modes(TINY, repetitions=1, engine=engine)
        compare_modes(TINY, repetitions=1, engine=engine)
        assert engine.stats.runs == 4
        assert engine.stats.executed == 2
        assert engine.stats.cache_hits == 2
        text = render_engine_stats(engine.last_stats)
        assert "2 cache hits" in text

    def test_stats_track_guest_instructions(self, tmp_path):
        engine = RunEngine(jobs=1, cache=ResultCache(tmp_path))
        results = compare_modes(TINY, repetitions=1, engine=engine)
        from repro.bench.parallel import guest_instructions

        expected = sum(
            guest_instructions(r)
            for runs in results.runs.values() for r in runs
        )
        assert expected > 0
        assert engine.stats.guest_instructions == expected
        assert sum(engine.stats.run_instructions) == expected
        assert engine.stats.ips() > 0
        assert "guest instructions" in engine.stats.render()
        # cache hits cost no host time, so they must not count
        engine2 = RunEngine(jobs=1, cache=ResultCache(tmp_path))
        compare_modes(TINY, repetitions=1, engine=engine2)
        assert engine2.stats.cache_hits == 2
        assert engine2.stats.guest_instructions == 0

    def test_per_worker_breakdown_sums_to_aggregate(self, tmp_path):
        """Satellite: per-lane stats exist and sum exactly to the
        aggregate, on both the serial and pool paths."""
        engine = RunEngine(jobs=1, cache=ResultCache(tmp_path))
        compare_modes(TINY, repetitions=1, engine=engine)
        stats = engine.last_stats
        assert list(stats.workers) == ["inline"]
        assert stats.workers["inline"]["tasks"] == stats.executed == 2
        # serial single-lane runs keep stderr unchanged: no worker lines
        assert stats.render_workers() == []

        pooled = RunEngine(jobs=4)
        pooled.map(execute_spec, [
            RunSpec(config=TINY, mode=mode)
            for mode in ("unmodified", "rollback", "inheritance",
                         "ceiling")
        ])
        pstats = pooled.last_stats
        lanes = [n for n in pstats.workers if n.startswith("pool-")]
        assert lanes and len(lanes) >= 2
        assert pstats.executed == sum(
            pstats.workers[n]["tasks"] for n in lanes
        )
        assert pstats.run_wall == pytest.approx(sum(
            pstats.workers[n]["run_wall"] for n in lanes
        ))
        rendered = render_engine_stats(pstats)
        assert any(f"worker {n}:" in rendered for n in lanes)

    def test_cache_hit_lane_is_coordinator(self, tmp_path):
        cache = ResultCache(tmp_path)
        e1 = RunEngine(jobs=1, cache=cache)
        compare_modes(TINY, repetitions=1, engine=e1)
        e2 = RunEngine(jobs=1, cache=cache)
        compare_modes(TINY, repetitions=1, engine=e2)
        stats = e2.last_stats
        assert stats.workers["coordinator"]["cache_hits"] == 2
        assert stats.cache_hits == sum(
            rec["cache_hits"] for rec in stats.workers.values()
        )

    def test_host_perf_report_schema(self, monkeypatch, tmp_path):
        """measure_host_perf on a microscopic sweep: schema/1 shape."""
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        from repro.bench.figures import FigurePanel
        from repro.bench.hostperf import (
            SCHEMA,
            load_host_perf,
            measure_host_perf,
            write_host_perf,
        )

        report = measure_host_perf(
            [FigurePanel(5, "a")], repetitions=1, write_ratios=(0, 100),
        )
        assert report["schema"] == SCHEMA
        assert report["panels"] == ["5a"]
        assert set(report["interps"]) == {"reference", "fast"}
        for record in report["interps"].values():
            assert record["runs"] == 4
            assert record["guest_instructions"] > 0
            assert record["ips"] > 0
        assert report["guest_instructions_match"] is True
        assert "speedup_fast_vs_reference" in report
        path = tmp_path / "BENCH_interp.json"
        write_host_perf(report, path)
        assert load_host_perf(path) == __import__("json").load(open(path))
        assert load_host_perf(tmp_path / "missing.json") is None


def _degraded_result(item):
    """A run result whose tracer lost events (worker-side shape)."""
    return {
        "metrics": {
            "trace": {"events": 5, "dropped": item, "sink_errors": 1},
        },
    }


class TestTraceHealthLanes:
    """Tracer degradation (dropped events, detached sinks) surfaces in
    the per-worker stat lanes instead of vanishing into the artifact."""

    def test_trace_health_reads_both_shapes(self):
        from repro.bench.parallel import trace_health

        assert trace_health(_degraded_result(3)) == (3, 1)
        # server reports carry a top-level trace block
        assert trace_health(
            {"trace": {"dropped": 2, "sink_errors": 0}}
        ) == (2, 0)
        assert trace_health({"clock": 7}) == (0, 0)
        assert trace_health(object()) == (0, 0)

    def test_degraded_runs_surface_in_stats(self):
        engine = RunEngine(jobs=1)
        engine.map(_degraded_result, [3, 4])
        stats = engine.last_stats
        assert stats.trace_dropped == 7
        assert stats.trace_sink_errors == 2
        assert "TRACE DEGRADED" in stats.render()
        lines = stats.render_workers()
        assert lines, "degraded lanes must render even single-lane"
        assert any("TRACE DEGRADED: 7 dropped / 2 sink errors" in line
                   for line in lines)

    def test_degraded_runs_surface_from_pool_lanes(self):
        engine = RunEngine(jobs=2)
        engine.map(_degraded_result, [1, 2, 3])
        stats = engine.last_stats
        assert stats.trace_dropped == 6
        assert stats.trace_sink_errors == 3
        lanes = [n for n in stats.workers if n.startswith("pool-")]
        assert sum(
            stats.workers[n]["trace_dropped"] for n in lanes
        ) == 6

    def test_healthy_runs_stay_silent(self, tmp_path):
        engine = RunEngine(jobs=1, cache=ResultCache(tmp_path))
        compare_modes(TINY, repetitions=1, engine=engine)
        stats = engine.last_stats
        assert stats.trace_dropped == 0
        assert stats.trace_sink_errors == 0
        assert "TRACE DEGRADED" not in stats.render()
        assert stats.render_workers() == []

    def test_merge_sums_trace_lanes(self):
        from repro.bench.parallel import EngineStats

        a = EngineStats(jobs=1)
        a.trace_dropped, a.trace_sink_errors = 2, 1
        b = EngineStats(jobs=1)
        b.trace_dropped = 5
        a.merge(b)
        assert (a.trace_dropped, a.trace_sink_errors) == (7, 1)
