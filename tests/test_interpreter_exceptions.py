"""Interpreter tests: guest exception dispatch (JVM semantics)."""

import pytest

from repro import Asm, UncaughtGuestException
from repro.vm.classfile import FieldDef

from conftest import build_class, make_vm, run_single


def out_of(vm, name="out"):
    return vm.get_static("T", name)


class TestThrowCatch:
    def test_catch_by_exact_type(self):
        def emit(a: Asm):
            a.try_(
                body=lambda: a.throw_new("E"),
                catches=[("E", lambda: (a.pop(), a.const(1),
                                        a.putstatic("T", "out")))],
            )

        vm = make_vm()
        vm.load(build_class("E"))
        asm = Asm("main")
        emit(asm)
        asm.ret()
        vm.load(build_class("T", ["out:int"], [asm]))
        vm.spawn("T", "main", name="main")
        vm.run()
        assert out_of(vm) == 1

    def test_throwable_catches_everything(self):
        def emit(a: Asm):
            a.try_(
                body=lambda: a.const(1).const(0).div().pop(),
                catches=[("Throwable", lambda: (a.pop(), a.const(7),
                                                a.putstatic("T", "out")))],
            )

        assert out_of(run_single(emit, fields=["out:int"])) == 7

    def test_wrong_type_does_not_catch(self):
        def emit(a: Asm):
            a.try_(
                body=lambda: a.const(1).const(0).div().pop(),
                catches=[("NullPointerException",
                          lambda: (a.pop(), a.const(7),
                                   a.putstatic("T", "out")))],
            )

        with pytest.raises(UncaughtGuestException) as exc_info:
            run_single(emit, fields=["out:int"])
        assert exc_info.value.exc_class == "ArithmeticException"

    def test_exception_object_on_stack_in_handler(self):
        def emit(a: Asm):
            a.try_(
                body=lambda: a.const(1).const(0).div().pop(),
                catches=[("ArithmeticException",
                          lambda: a.putstatic("T", "out"))],
            )

        vm = run_single(emit, fields=["out:ref"])
        exc = out_of(vm)
        assert exc.classdef.name == "ArithmeticException"
        assert "zero" in exc.fields["message"]

    def test_operand_stack_cleared_on_catch(self):
        """JVM spec: the handler starts with only the exception on stack."""
        def emit(a: Asm):
            a.const(111)  # junk that must be wiped by the catch
            a.try_(
                body=lambda: a.throw_new("RuntimeException"),
                catches=[("RuntimeException",
                          lambda: (a.pop(), a.const(5),
                                   a.putstatic("T", "out")))],
            )
            a.pop()  # would fail if the 111 was still there... it IS
            # below the try in this frame; guard with a sentinel instead:

        # simpler: handler leaves stack empty; storing works; and the
        # junk 111 is gone, so a dup of the stack depth would break.
        def emit2(a: Asm):
            a.const(111)
            a.try_(
                body=lambda: a.throw_new("RuntimeException"),
                catches=[("RuntimeException",
                          lambda: a.putstatic("T", "out"))],
            )
            # stack must now be empty: emit a standalone const/store
            a.const(9).putstatic("T", "after")

        vm = run_single(emit2, fields=["out:ref", "after:int"])
        assert out_of(vm).classdef.name == "RuntimeException"
        assert out_of(vm, "after") == 9

    def test_rethrow_from_handler(self):
        def emit(a: Asm):
            a.try_(
                body=lambda: a.try_(
                    body=lambda: a.throw_new("E"),
                    catches=[("E", lambda: a.athrow())],  # rethrow
                ),
                catches=[("E", lambda: (a.pop(), a.const(2),
                                        a.putstatic("T", "out")))],
            )

        vm = make_vm()
        vm.load(build_class("E"))
        asm = Asm("main")
        emit(asm)
        asm.ret()
        vm.load(build_class("T", ["out:int"], [asm]))
        vm.spawn("T", "main", name="main")
        vm.run()
        assert out_of(vm) == 2


class TestFinally:
    def test_finally_runs_on_normal_path(self):
        def emit(a: Asm):
            a.try_(
                body=lambda: a.const(0).pop(),
                finally_=lambda: a.const(1).putstatic("T", "fin"),
            )

        assert out_of(run_single(emit, fields=["fin:int"]), "fin") == 1

    def test_finally_runs_on_exception_path_and_rethrows(self):
        def emit(a: Asm):
            a.try_(
                body=lambda: a.try_(
                    body=lambda: a.const(1).const(0).div().pop(),
                    finally_=lambda: a.const(1).putstatic("T", "fin"),
                ),
                catches=[("ArithmeticException",
                          lambda: (a.pop(), a.const(1),
                                   a.putstatic("T", "caught")))],
            )

        vm = run_single(emit, fields=["fin:int", "caught:int"])
        assert out_of(vm, "fin") == 1
        assert out_of(vm, "caught") == 1

    def test_finally_runs_after_catch(self):
        def emit(a: Asm):
            a.try_(
                body=lambda: a.throw_new("RuntimeException"),
                catches=[("RuntimeException", lambda: a.pop())],
                finally_=lambda: (
                    a.getstatic("T", "fin"), a.const(1), a.add(),
                    a.putstatic("T", "fin"),
                ),
            )

        assert out_of(run_single(emit, fields=["fin:int"]), "fin") == 1


class TestBuiltinGuestExceptions:
    @pytest.mark.parametrize("body,exc_class", [
        (lambda a: a.const(1).const(0).div().pop(), "ArithmeticException"),
        (lambda a: a.const(1).const(0).mod().pop(), "ArithmeticException"),
        (lambda a: (a.getstatic("T", "nil"), a.getfield("x"), a.pop()),
         "NullPointerException"),
        (lambda a: (a.const(2).newarray(), a.const(5), a.aload(), a.pop()),
         "ArrayIndexOutOfBoundsException"),
        (lambda a: (a.const(-3).newarray(), a.pop()),
         "NegativeArraySizeException"),
        (lambda a: (a.new("T"), a.emit(__import__("repro.vm.bytecode",
         fromlist=["MONITOREXIT"]).MONITOREXIT, "x")),
         "IllegalMonitorStateException"),
    ])
    def test_runtime_faults_map_to_guest_classes(self, body, exc_class):
        with pytest.raises(UncaughtGuestException) as exc_info:
            run_single(lambda a: body(a), fields=["nil:ref"])
        assert exc_info.value.exc_class == exc_class

    def test_faults_catchable_in_guest(self):
        def emit(a: Asm):
            a.try_(
                body=lambda: (a.getstatic("T", "nil"), a.getfield("x"),
                              a.pop()),
                catches=[("NullPointerException",
                          lambda: (a.pop(), a.const(1),
                                   a.putstatic("T", "out")))],
            )

        vm = run_single(emit, fields=["out:int", "nil:ref"])
        assert out_of(vm) == 1


class TestUnwindingAcrossFrames:
    def test_exception_propagates_through_callee(self):
        thrower = Asm("boom", argc=0)
        thrower.throw_new("RuntimeException")

        main = Asm("main")
        main.try_(
            body=lambda: main.invoke("T", "boom", 0),
            catches=[("RuntimeException",
                      lambda: (main.pop(), main.const(3),
                               main.putstatic("T", "out")))],
        )
        main.ret()

        vm = make_vm()
        vm.load(build_class("T", ["out:int"], [thrower, main]))
        vm.spawn("T", "main", name="main")
        vm.run()
        assert out_of(vm) == 3

    def test_monitor_released_during_unwinding(self):
        """The javac-style catch-all release handler must free the monitor
        when an exception escapes a synchronized block."""
        def emit(a: Asm):
            a.try_(
                body=lambda: _sync_then_throw(a),
                catches=[("RuntimeException", lambda: a.pop())],
            )

        def _sync_then_throw(a: Asm):
            a.getstatic("T", "lock")
            ctx = a.sync()
            with ctx:
                a.throw_new("RuntimeException")

        asm = Asm("main")
        emit(asm)
        asm.ret()
        vm = make_vm()
        cls = build_class("T", ["lock:ref"], [asm])
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        vm.spawn("T", "main", name="main")
        vm.run()
        lock = vm.get_static("T", "lock")
        assert lock.monitor is not None
        assert lock.monitor.owner is None  # released on the way out

    def test_uncaught_exception_reports_thread_and_class(self):
        with pytest.raises(UncaughtGuestException) as exc_info:
            run_single(lambda a: a.throw_new("Error"))
        assert exc_info.value.thread_name == "main"
        assert exc_info.value.exc_class == "Error"

    def test_uncaught_can_be_suppressed(self):
        vm = run_single(
            lambda a: a.throw_new("Error"),
            raise_on_uncaught=False,
        )
        assert len(vm.uncaught) == 1
        thread, exc = vm.uncaught[0]
        assert thread.name == "main"
        assert exc.classdef.name == "Error"

    def test_exception_message_field(self):
        def emit(a: Asm):
            obj = a.local()
            a.new("Exception").store(obj)
            a.load(obj).const("custom detail").putfield("message")
            a.load(obj).athrow()

        with pytest.raises(UncaughtGuestException) as exc_info:
            run_single(emit)
        assert "custom detail" in str(exc_info.value)
