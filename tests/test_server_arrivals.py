"""Seeded arrival processes: golden values, integer-only samplers, and
the stream-independence contract (streams are a pure function of
``(seed, tier name)`` — thread counts and worker fan-out cannot perturb
them).

The golden lists pin the exact fixed-point arithmetic: any change to the
samplers (or a host libm sneaking in) shows up as a diff here before it
silently invalidates every cached server cell.
"""

from __future__ import annotations

import pytest

from repro.server.arrivals import (
    ARRIVAL_KINDS,
    _heavy_multiplier,
    _log2_fp,
    arrival_gaps,
    int_exponential,
    lock_targets,
    retry_jitter,
    service_demands,
    stream_rng,
    write_flags,
)
from repro.server.presets import get_preset
from repro.server.workload import TierSpec, tier_streams
from repro.util.rng import sweep_seed

SEED = 0x5EED


class TestFixedPointLog:
    def test_exact_powers(self):
        assert _log2_fp(1) == 0
        assert _log2_fp(2) == 1 << 20
        assert _log2_fp(1 << 32) == 32 << 20

    def test_log2_of_three(self):
        # floor(log2(3) * 2^20) = 1661953: the fractional bits are real
        assert _log2_fp(3) == 1661953

    def test_monotone(self):
        values = [_log2_fp(u) for u in (1, 2, 3, 7, 100, 10**9, 2**63)]
        assert values == sorted(values)


class TestSamplers:
    def test_poisson_golden(self):
        gaps = arrival_gaps(
            "poisson", stream_rng(SEED, "gaps", "gold"), 6, 1000
        )
        assert gaps == [1968, 75, 662, 1450, 1103, 1706]

    def test_bursty_golden(self):
        gaps = arrival_gaps(
            "bursty", stream_rng(SEED, "gaps", "gold"), 6, 1000
        )
        assert gaps == [246, 9, 82, 181, 137, 213]

    def test_heavy_golden(self):
        gaps = arrival_gaps(
            "heavy", stream_rng(SEED, "gaps", "gold"), 6, 1000
        )
        assert gaps == [655, 220, 367, 472, 1942, 406]

    def test_service_demand_golden(self):
        assert service_demands(
            stream_rng(SEED, "svc", "gold"), 6, 24, heavy=False
        ) == [32, 15, 14, 31, 22, 15]

    def test_lock_write_jitter_golden(self):
        assert lock_targets(
            stream_rng(SEED, "lock", "gold"), 8, 4, 60
        ) == [3, 0, 0, 0, 3, 2, 0, 2]
        assert write_flags(
            stream_rng(SEED, "rw", "gold"), 8, 50
        ) == [0, 1, 0, 0, 1, 1, 1, 0]
        assert retry_jitter(
            stream_rng(SEED, "jitter", "gold"), 3, 2, 500
        ) == [263, 4, 354, 376, 472, 257]

    def test_exponential_mean(self):
        rng = stream_rng(SEED, "gaps", "mean")
        draws = [int_exponential(rng, 1000) for _ in range(4000)]
        assert abs(sum(draws) // len(draws) - 1000) < 100

    def test_modulated_kinds_keep_the_mean(self):
        # bursty/heavy reshape the process but must not change the load
        for kind in ("bursty", "heavy"):
            gaps = arrival_gaps(
                kind, stream_rng(SEED, "gaps", "m" + kind), 4000, 1000
            )
            assert abs(sum(gaps) // len(gaps) - 1000) < 200

    def test_heavy_multiplier_is_power_of_three(self):
        rng = stream_rng(SEED, "gaps", "mult")
        for _ in range(200):
            m = _heavy_multiplier(rng)
            assert m >= 1
            while m % 3 == 0:
                m //= 3
            assert m == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            arrival_gaps("zipf", stream_rng(SEED, "gaps", "x"), 4, 100)

    def test_all_kinds_are_registered(self):
        assert ARRIVAL_KINDS == ("poisson", "bursty", "heavy")


class TestStreamIndependence:
    """The satellite-2 regression: arrival streams depend only on
    ``(seed, tier name)`` and the tier's own arrival parameters — never
    on guest thread counts or worker fan-out."""

    def test_streams_ignore_worker_count(self):
        config = get_preset("chaos-smoke")
        for tier in config.tiers:
            fat = TierSpec(**{
                **{
                    f: getattr(tier, f)
                    for f in tier.__dataclass_fields__
                },
                "workers": tier.workers * 8,
            })
            a = tier_streams(config, tier, SEED)
            b = tier_streams(config, fat, SEED)
            assert a == b

    def test_streams_ignore_other_tiers(self):
        small = get_preset("chaos-smoke")
        big = get_preset("storm")
        # same tier spec embedded in different configs with identical
        # data-plane shape draws identical streams
        tier = small.tiers[0]
        others = tuple(
            t for t in big.tiers if t.name != tier.name
        )
        a = tier_streams(small, tier, SEED)
        b = tier_streams(
            type(small)(
                name="other",
                tiers=(tier,) + others,
                locks=small.locks,
                cells=small.cells,
                hot_lock_pct=small.hot_lock_pct,
            ),
            tier,
            SEED,
        )
        assert a == b

    def test_streams_change_with_seed(self):
        config = get_preset("chaos-smoke")
        tier = config.tiers[0]
        assert tier_streams(config, tier, 1) != tier_streams(
            config, tier, 2
        )

    def test_stream_lengths_match_requests(self):
        config = get_preset("baseline")
        for tier in config.tiers:
            streams = tier_streams(config, tier, SEED)
            assert len(streams.gaps) == tier.requests
            assert len(streams.svc) == tier.requests
            assert len(streams.lockidx) == tier.requests
            assert len(streams.iswrite) == tier.requests
            assert len(streams.jitter) == tier.requests * max(
                1, tier.max_retries
            )


class TestSweepSeedGolden:
    """Golden VM seeds for the server namespace: cache keys and replay
    commands depend on these exact values."""

    def test_server_sweep_seeds(self):
        assert sweep_seed("server", "storm", 1) == 0xF18B685A06B41A31
        assert sweep_seed("server", "chaos-smoke", 1) == (
            0xC05382ACB1F83C4C
        )

    def test_namespaces_disjoint(self):
        assert sweep_seed("server", "storm", 1) != sweep_seed(
            "campaign", "storm", 1
        )
