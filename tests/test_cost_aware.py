"""Tests for the cost-aware revocation extension (§4.2 observation:
rollback cost can outweigh the benefit for write-heavy sections)."""

from repro import Asm

from conftest import build_class, make_vm


def scenario(vm, *, low_iters=2_000):
    """Deterministic inversion with a write-heavy low section."""
    run = Asm("run", argc=2)  # (iters, delay)
    run.load(1).sleep()
    run.getstatic("T", "lock")
    with run.sync():
        i = run.local()
        run.for_range(i, lambda: run.load(0), lambda: (
            run.getstatic("T", "counter"), run.const(1), run.add(),
            run.putstatic("T", "counter"),
        ))
    run.ret()
    cls = build_class("T", ["lock:ref", "counter:int"], [run])
    vm.load(cls)
    vm.set_static("T", "lock", vm.new_object("T"))
    vm.spawn("T", "run", args=[low_iters, 1], priority=1, name="low")
    vm.spawn("T", "run", args=[50, 9_000], priority=10, name="high")
    vm.run()
    return vm


class TestCostAwareRevocation:
    def test_unlimited_by_default(self):
        vm = scenario(make_vm("rollback"))
        s = vm.metrics()["support"]
        assert s["revocations_completed"] >= 1
        assert s["revocations_denied_cost"] == 0

    def test_tight_budget_denies_revocation(self):
        """With a budget far below the section's write count, the high
        thread falls back to classic blocking — and state stays exact."""
        vm = scenario(make_vm("rollback", max_rollback_entries=10))
        s = vm.metrics()["support"]
        assert s["revocations_completed"] == 0
        assert s["revocations_denied_cost"] >= 1
        assert vm.get_static("T", "counter") == 2_050

    def test_generous_budget_allows_revocation(self):
        vm = scenario(make_vm("rollback", max_rollback_entries=1_000_000))
        assert vm.metrics()["support"]["revocations_completed"] >= 1

    def test_budget_bounds_restored_entries(self):
        """Whenever a revocation does happen under a budget, the restored
        count respects it."""
        vm = scenario(
            make_vm("rollback", max_rollback_entries=1_500),
            low_iters=2_000,
        )
        s = vm.metrics()["support"]
        if s["revocations_completed"]:
            assert s["undo_entries_restored"] <= 1_500 * \
                s["revocations_completed"]
