"""Tests for the RuntimeSupport seam: the NullSupport contract and the
equivalence guarantee that the unmodified VM pays no hidden costs."""

from repro import Asm
from repro.vm.support import NullSupport, RuntimeSupport

from conftest import build_class, make_vm


class TestNullSupportContract:
    def test_all_cost_hooks_return_zero(self):
        sup = NullSupport()
        assert sup.on_monitor_entered(None, None, None, None, False) == 0
        assert sup.on_monitor_exited(None, None, None, None) == 0
        assert sup.on_contended_acquire(None, None) == 0
        assert sup.on_handoff(None, None, None) == 0
        assert sup.before_store(None, None, None, None, False) == 0
        assert sup.after_load(None, None, None, False) == 0
        assert sup.on_rollback_handler(None, None, False) == 0
        assert sup.on_native_call(None, "x") == 0
        assert sup.on_wait(None, None) == 0
        assert sup.on_wait_reacquired(None, None) == 0

    def test_check_yield_never_signals(self):
        assert NullSupport().check_yield(None) is None

    def test_resolve_deadlock_declines(self):
        assert NullSupport().resolve_deadlock([]) is False

    def test_base_class_is_the_null_behaviour(self):
        assert isinstance(NullSupport(), RuntimeSupport)
        assert NullSupport().name == "unmodified"

    def test_attach_binds_vm(self):
        sup = NullSupport()
        sentinel = object()
        sup.attach(sentinel)
        assert sup.vm is sentinel


class TestUnmodifiedVmCostNeutrality:
    def test_same_virtual_time_regardless_of_sync_content(self):
        """On the unmodified VM, running the identical single-threaded
        program twice gives bit-identical virtual time (no hidden state in
        the support layer)."""
        def run_once():
            a = Asm("run", argc=0)
            a.getstatic("T", "lock")
            with a.sync():
                i = a.local()
                a.for_range(i, lambda: a.const(500), lambda: (
                    a.getstatic("T", "x"), a.const(1), a.add(),
                    a.putstatic("T", "x"),
                ))
            a.ret()
            vm = make_vm("unmodified", seed=1)
            vm.load(build_class("T", ["lock:ref", "x:int"], [a]))
            vm.set_static("T", "lock", vm.new_object("T"))
            vm.spawn("T", "run", name="t")
            vm.run()
            return vm.clock.now

        assert run_once() == run_once()

    def test_write_ratio_barely_changes_unmodified_time(self):
        """Paper fig. 5: the UNMODIFIED series is flat in the write ratio
        — reads and writes cost the same without barriers.  (The taken
        branch of the interleaving test costs one extra GOTO per write,
        so "flat" means within a couple of percent, as in the paper's
        plots.)"""
        from repro.bench.harness import run_microbench
        from repro.bench.microbench import MicrobenchConfig

        def elapsed(write_pct):
            cfg = MicrobenchConfig(
                high_threads=1, low_threads=1, iters_high=300,
                iters_low=300, sections=3, write_pct=write_pct, seed=9,
            )
            return run_microbench(cfg, "unmodified").high_elapsed

        lo, hi = sorted((elapsed(0), elapsed(100)))
        assert hi / lo < 1.02

    def test_modified_time_grows_with_write_ratio(self):
        """...while the MODIFIED series pays the slow-path barrier per
        write, so 100% writes cost more than 0%."""
        from repro.bench.harness import run_microbench
        from repro.bench.microbench import MicrobenchConfig

        def elapsed(write_pct):
            cfg = MicrobenchConfig(
                high_threads=1, low_threads=1, iters_high=300,
                iters_low=300, sections=3, write_pct=write_pct, seed=9,
            )
            return run_microbench(cfg, "rollback").high_elapsed

        assert elapsed(100) > elapsed(0)
