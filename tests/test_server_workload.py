"""Guest server workload: config validation, request conservation, the
ring-queue guest library under real load, and report determinism.

The unit shape (``_SMALL``) is deliberately tiny — each run finishes in
well under a second — while still overloaded enough to exercise
shedding, timeouts and retries.
"""

from __future__ import annotations

import json

import pytest

from repro.check import final_fingerprint, fingerprint_digest
from repro.server.plane import (
    AbortStormDetector,
    check_server_invariants,
)
from repro.server.report import build_report, latency_summary
from repro.server.workload import (
    ServerConfig,
    TierSpec,
    build_server,
    expected_cycle_cap,
    tier_streams,
)
from repro.vm.vmcore import JVM, VMOptions

SEED = 0x5EED


def _small() -> ServerConfig:
    return ServerConfig(
        name="unit-small",
        tiers=(
            TierSpec(
                "gold", priority=8, requests=24, mean_gap=900,
                arrival="bursty", workers=2, write_pct=80, svc_iters=24,
                timeout=10_000, max_retries=2, backoff=700, jitter=300,
                shed_depth=8,
            ),
            TierSpec(
                "bronze", priority=3, requests=16, mean_gap=1_300,
                arrival="heavy", workers=1, write_pct=70, svc_iters=30,
                heavy_service=True, timeout=14_000, max_retries=2,
                backoff=900, jitter=400, shed_depth=6,
            ),
        ),
        locks=2, cells=8, hot_lock_pct=75,
        storm_window=12_000, storm_enter=5, storm_exit=1,
    )


def _run(config, seed=SEED, mode="rollback", detector=True, **overrides):
    options = VMOptions(
        mode=mode,
        scheduler="priority",
        seed=seed,
        raise_on_uncaught=False,
        max_cycles=expected_cycle_cap(config, seed),
        **overrides,
    )
    vm = JVM(options)
    build_server(config, seed).install(vm)
    storm = AbortStormDetector(config) if detector else None
    if storm is not None:
        vm.slice_hooks.append(storm)
    vm.run()
    return vm, storm


class TestConfigValidation:
    def test_needs_tiers(self):
        with pytest.raises(ValueError):
            ServerConfig(name="x", tiers=())

    def test_duplicate_tier_names_rejected(self):
        tier = _small().tiers[0]
        with pytest.raises(ValueError):
            ServerConfig(name="x", tiers=(tier, tier))

    def test_generator_must_outrank_workers(self):
        tier = TierSpec("t", priority=12, requests=4, mean_gap=100)
        with pytest.raises(ValueError):
            ServerConfig(name="x", tiers=(tier,), generator_priority=12)

    def test_scaled_preserves_shape(self):
        config = _small()
        scaled = config.scaled(400)
        assert len(scaled.tiers) == len(config.tiers)
        assert 380 <= scaled.total_requests <= 400
        # proportions survive the rescale
        assert scaled.tiers[0].requests > scaled.tiers[1].requests
        # non-request knobs are untouched
        assert scaled.tiers[0].timeout == config.tiers[0].timeout
        assert scaled.locks == config.locks

    def test_scaled_rejects_too_few(self):
        with pytest.raises(ValueError):
            _small().scaled(1)


class TestServerRun:
    def test_invariants_hold_rollback(self):
        vm, _ = _run(_small())
        assert check_server_invariants(vm, _small(), SEED) == []

    def test_invariants_hold_unmodified(self):
        vm, _ = _run(_small(), mode="unmodified")
        assert check_server_invariants(vm, _small(), SEED) == []

    def test_every_request_accounted(self):
        config = _small()
        vm, _ = _run(config)
        for ti, tier in enumerate(config.tiers):
            shed = vm.get_static("Server", "shed").get(ti)
            dropped = vm.get_static("Server", "exhausted").get(ti)
            done = vm.get_static("Server", "completed").get(ti)
            assert shed + dropped + done == tier.requests
            assert vm.get_static("Server", "errors").get(ti) == 0

    def test_overload_engages_under_pressure(self):
        """The tiny shape is overloaded: at least one protection layer
        (shedding, timeout/retry) must visibly engage."""
        config = _small()
        vm, _ = _run(config)
        shed = sum(
            vm.get_static("Server", "shed").get(ti)
            for ti in range(len(config.tiers))
        )
        retries = sum(
            vm.get_static("Server", "retries").get(ti)
            for ti in range(len(config.tiers))
        )
        assert shed + retries > 0

    def test_data_cells_match_write_stream(self):
        config = _small()
        vm, _ = _run(config)
        total = 0
        cells = vm.get_static("Server", "cells")
        for li in range(config.locks):
            row = cells.get(li)
            total += sum(row.get(ci) for ci in range(len(row)))
        expected = 0
        for ti, tier in enumerate(config.tiers):
            lat = vm.get_static("Server", "lat").get(ti)
            streams = tier_streams(config, tier, SEED)
            expected += sum(
                streams.svc[i]
                for i in range(tier.requests)
                if lat.get(i) >= 0 and streams.iswrite[i]
            )
        assert total == expected

    def test_corrupted_counter_is_flagged(self):
        """The invariant checker actually detects tampering (it is not
        vacuously green)."""
        config = _small()
        vm, _ = _run(config)
        completed = vm.get_static("Server", "completed")
        completed.put(0, completed.get(0) + 1)
        problems = check_server_invariants(vm, config, SEED)
        assert problems and "gold" in problems[0]


class TestDeterminism:
    def test_interp_parity_byte_identical(self):
        config = _small()
        reports = {}
        for interp in ("fast", "reference"):
            vm, storm = _run(config, interp=interp)
            report = build_report(
                vm, config, seed=SEED, mode="rollback",
                outcome="completed", violations=[],
                storm_events=storm.events, injected={},
            )
            reports[interp] = json.dumps(report, sort_keys=True)
        assert reports["fast"] == reports["reference"]

    def test_fingerprints_match_across_interps(self):
        config = _small()
        digests = set()
        for interp in ("fast", "reference"):
            vm, _ = _run(config, interp=interp)
            digests.add(
                fingerprint_digest(final_fingerprint(vm, "completed"))
            )
        assert len(digests) == 1

    def test_rerun_is_byte_identical(self):
        config = _small()
        a, _ = _run(config)
        b, _ = _run(config)
        assert fingerprint_digest(
            final_fingerprint(a, "completed")
        ) == fingerprint_digest(final_fingerprint(b, "completed"))


class TestReport:
    def test_latency_summary_nearest_rank(self):
        samples = list(range(1, 101))
        summary = latency_summary(samples)
        assert summary["count"] == 100
        assert summary["p50"] == 50
        assert summary["p99"] == 99
        assert summary["p999"] == 100
        assert summary["max"] == 100
        assert summary["mean"] == 50

    def test_latency_summary_empty(self):
        assert latency_summary([])["count"] == 0

    def test_latency_summary_empty_uses_null_sentinel(self):
        # A fully-shed tier served nothing: percentiles must be the
        # explicit None sentinel, not a misleading 0-cycle latency.
        summary = latency_summary([])
        for key in ("p50", "p99", "p999", "max", "mean"):
            assert summary[key] is None, key

    def test_latency_summary_single_sample(self):
        summary = latency_summary([37])
        assert summary == {
            "count": 1, "p50": 37, "p99": 37, "p999": 37,
            "max": 37, "mean": 37,
        }

    def test_render_report_shows_dash_for_shed_tier(self):
        from repro.server.report import render_report

        report = {
            "format": "repro.server/1", "config": "synthetic",
            "seed": "0x1", "mode": "rollback", "scheduler": "priority",
            "outcome": "completed", "violations": [],
            "elapsed_cycles": 1000, "requests": 4, "threads": 2,
            "context_switches": 7, "injected": {},
            "storm": {"events": [], "entries": 0},
            "robustness": {"watchdog_trips": 0},
            "tiers": {
                "shed-out": {
                    "priority": 1, "requests": 4, "completed": 0,
                    "shed": 4, "timeouts": 0, "retries": 0,
                    "dropped": 0, "errors": 0, "goodput_per_mcycle": 0,
                    "latency": latency_summary([]),
                    "cycles": 0, "blocked_cycles": 0, "revocations": 0,
                },
            },
        }
        text = render_report(report)
        row = next(l for l in text.splitlines() if "shed-out" in l)
        assert "None" not in row
        assert row.count("-") >= 3  # p50/p99/p999 all render as "-"

    def test_report_shape(self):
        config = _small()
        vm, storm = _run(config)
        report = build_report(
            vm, config, seed=SEED, mode="rollback",
            outcome="completed", violations=[],
            storm_events=storm.events, injected={},
        )
        assert report["format"] == "repro.server/1"
        assert report["seed"] == f"0x{SEED:x}"
        assert set(report["tiers"]) == {"gold", "bronze"}
        for tier in report["tiers"].values():
            assert tier["latency"]["count"] == tier["completed"]
        assert "interp" not in json.dumps(report)
        rb = report["robustness"]
        assert set(rb) == {
            "retry_budget_exhausted", "degradations_to_inheritance",
            "degradations_to_nonrevocable", "starvations_detected",
            "watchdog_trips",
        }

    def test_report_integers_only(self):
        config = _small()
        vm, storm = _run(config)
        report = build_report(
            vm, config, seed=SEED, mode="rollback",
            outcome="completed", violations=[],
            storm_events=storm.events, injected={},
        )

        def walk(node):
            if isinstance(node, dict):
                for v in node.values():
                    walk(v)
            elif isinstance(node, (list, tuple)):
                for v in node:
                    walk(v)
            else:
                assert not isinstance(node, float), node

        walk(report)


class TestEpisodeAttribution:
    """Per-tier priority-inversion episode counts in the cell report,
    fed by the always-on streaming tracer + online episode sink."""

    @pytest.fixture(scope="class")
    def report(self):
        from repro.server.plane import ServerSpec, run_server_cell

        return run_server_cell(ServerSpec(preset="baseline"))

    def test_episode_totals_pinned(self, report):
        assert report["episodes"] == {
            "total": 78,
            "inversion_cycles": 46784,
            "by_resolution": {
                "natural-release": 21, "other": 50, "revocation": 7,
            },
        }

    def test_tier_attribution_pinned(self, report):
        tiers = report["tiers"]
        assert (tiers["gold"]["episodes"],
                tiers["gold"]["inversion_cycles"]) == (78, 46784)
        for name in ("silver", "bronze"):
            assert tiers[name]["episodes"] == 0
            assert tiers[name]["inversion_cycles"] == 0

    def test_tier_counts_reconcile_with_totals(self, report):
        assert sum(
            t["episodes"] for t in report["tiers"].values()
        ) == report["episodes"]["total"]
        assert sum(
            t["inversion_cycles"] for t in report["tiers"].values()
        ) == report["episodes"]["inversion_cycles"]
        assert sum(
            report["episodes"]["by_resolution"].values()
        ) == report["episodes"]["total"]

    def test_streaming_tracer_stays_healthy(self, report):
        """The sink runs in streaming mode: nothing stored, nothing
        dropped, no sink detached — however long the cell runs."""
        assert report["trace"] == {"dropped": 0, "sink_errors": 0}

    def test_report_renders_episode_columns(self, report):
        from repro.server.report import render_report

        text = render_report(report)
        assert "episd" in text and "inv-cyc" in text
        assert "inversion episodes: 78 (46784 blocked cycles)" in text
        assert "revocation=7" in text
