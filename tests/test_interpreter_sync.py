"""Interpreter tests: monitors under concurrency.

Multi-threaded guest programs on the *unmodified* VM: mutual exclusion,
recursion, blocking, direct handoff, prioritized queues, wait/notify,
timed waits, sleep/yield.
"""

import pytest

from repro import Asm, UncaughtGuestException

from conftest import build_class, make_vm


def out_of(vm, name="out", cls="T"):
    return vm.get_static(cls, name)


def lock_class(*extra_fields, methods=()):
    return build_class("T", ["lock:ref", *extra_fields], methods)


def install(vm, cls):
    vm.load(cls)
    vm.set_static("T", "lock", vm.new_object("T"))


class TestMutualExclusion:
    def test_critical_section_atomicity(self):
        """Two threads interleaving non-atomic read-modify-write inside a
        monitor must not lose updates (the loop spans many quanta)."""
        run = Asm("run", argc=0)
        run.getstatic("T", "lock")
        with run.sync():
            i = run.local()
            run.for_range(i, lambda: run.const(2_000), lambda: (
                run.getstatic("T", "counter"), run.const(1), run.add(),
                run.putstatic("T", "counter"),
            ))
        run.ret()
        vm = make_vm()
        install(vm, lock_class("counter:int", methods=[run]))
        vm.spawn("T", "run", name="a")
        vm.spawn("T", "run", name="b")
        vm.run()
        assert out_of(vm, "counter") == 4_000

    def test_without_monitor_updates_are_lost(self):
        """Sanity check that the scheduler actually interleaves: the same
        read-modify-write WITHOUT the monitor, with a yield point between
        the read and the write, must lose updates.  (Pseudo-preemption
        means races can only manifest across yield points.)"""
        run = Asm("run", argc=0)
        i = run.local()
        tmp = run.local()
        run.for_range(i, lambda: run.const(2_000), lambda: (
            run.getstatic("T", "counter"), run.store(tmp),
            run.yield_(),
            run.load(tmp), run.const(1), run.add(),
            run.putstatic("T", "counter"),
        ))
        run.ret()
        vm = make_vm()
        vm.load(build_class("T", ["counter:int"], [run]))
        vm.spawn("T", "run", name="a")
        vm.spawn("T", "run", name="b")
        vm.run()
        assert out_of(vm, "counter") < 4_000

    def test_recursion_within_one_thread(self):
        run = Asm("run", argc=0)
        run.getstatic("T", "lock")
        with run.sync():
            run.getstatic("T", "lock")
            with run.sync():
                run.const(1).putstatic("T", "out")
        run.ret()
        vm = make_vm()
        install(vm, lock_class("out:int", methods=[run]))
        vm.spawn("T", "run", name="a")
        vm.run()
        assert out_of(vm) == 1
        assert vm.get_static("T", "lock").monitor.owner is None

    def test_two_distinct_monitors_do_not_exclude(self):
        """Threads on different locks interleave freely."""
        run = Asm("run", argc=1)  # arg: lock index
        run.getstatic("T", "locks").load(0).aload()
        with run.sync():
            i = run.local()
            run.for_range(i, lambda: run.const(500), lambda: (
                run.getstatic("T", "counter"), run.const(1), run.add(),
                run.putstatic("T", "counter"),
            ))
        run.ret()
        vm = make_vm()
        vm.load(build_class("T", ["locks:ref", "counter:int"], [run]))
        locks = vm.new_array(2)
        locks.put(0, vm.new_object("T"))
        locks.put(1, vm.new_object("T"))
        vm.set_static("T", "locks", locks)
        vm.spawn("T", "run", args=[0], name="a")
        vm.spawn("T", "run", args=[1], name="b")
        vm.run()
        # interleaving happened but each increment loop is racy only against
        # the other lock's thread — total may be lost; just require both ran.
        acquire_events = vm.tracer.of_kind("acquire")
        assert {e.thread for e in acquire_events} == {"a", "b"}


class TestHandoffAndQueues:
    def _contention_vm(self, priorities, prioritized=True):
        """All threads contend on one lock; record acquisition order."""
        run = Asm("run", argc=1)  # arg: my slot in the order array
        run.getstatic("T", "lock")
        with run.sync():
            # order[next] = tid; next++
            run.getstatic("T", "order")
            run.getstatic("T", "next")
            run.tid()
            run.astore()
            run.getstatic("T", "next").const(1).add()
            run.putstatic("T", "next")
            i = run.local()
            # long enough to span several quanta, so later arrivals truly
            # block while the first acquirer holds the lock
            run.for_range(i, lambda: run.const(8_000), lambda:
                          run.const(0).pop())
        run.ret()
        vm = make_vm(prioritized_queues=prioritized)
        vm.load(build_class("T", ["lock:ref", "order:ref", "next:int"],
                            [run]))
        vm.set_static("T", "lock", vm.new_object("T"))
        vm.set_static("T", "order", vm.new_array(len(priorities), -1))
        for k, prio in enumerate(priorities):
            vm.spawn("T", "run", args=[k], priority=prio, name=f"t{k}")
        vm.run()
        return vm.get_static("T", "order").snapshot()

    def test_prioritized_queue_prefers_high(self):
        """With a low-priority holder and mixed waiters, high-priority
        waiters acquire before low-priority ones (paper §4)."""
        order = self._contention_vm([1, 1, 10, 10])
        # The first acquirer is whoever got there first (round-robin spawn
        # order), but among the *queued* threads, the high-priority ones
        # (tids 2, 3) must precede the remaining low-priority one.
        queued = order[1:]
        high_positions = [queued.index(t) for t in (2, 3)]
        low_positions = [queued.index(t) for t in (0, 1) if t in queued]
        assert max(high_positions) < max(low_positions)

    def test_all_threads_eventually_acquire(self):
        order = self._contention_vm([5, 5, 5])
        assert sorted(order) == [0, 1, 2]

    def test_direct_handoff_option_prevents_barging(self):
        """With VMOptions(direct_handoff=True), a release transfers
        ownership to the queued waiter before it runs, so the releaser
        cannot immediately re-enter (the abl-handoff ablation)."""
        run = Asm("run", argc=0)

        def _one_section(a):
            a.getstatic("T", "lock")
            ctx = a.sync()
            with ctx:
                i = a.local()
                a.for_range(i, lambda: a.const(600), lambda: (
                    a.getstatic("T", "counter"), a.const(1), a.add(),
                    a.putstatic("T", "counter"),
                ))

        s = run.local()
        run.for_range(s, lambda: run.const(3), lambda: _one_section(run))
        run.ret()

        vm = make_vm(direct_handoff=True)
        install(vm, lock_class("counter:int", methods=[run]))
        vm.spawn("T", "run", name="a")
        vm.spawn("T", "run", name="b")
        vm.run()
        assert out_of(vm, "counter") == 3_600
        handoffs = vm.get_static("T", "lock").monitor.handoffs
        assert handoffs >= 1  # contention actually exercised handoff


class TestWaitNotify:
    def _pingpong_class(self):
        """consumer waits for flag; producer sets flag and notifies."""
        consumer = Asm("consume", argc=0)
        consumer.getstatic("T", "lock")
        with consumer.sync():
            consumer.while_(
                lambda: consumer.getstatic("T", "flag").not_(),
                lambda: consumer.getstatic("T", "lock").wait_(),
            )
            consumer.const(1).putstatic("T", "observed")
        consumer.ret()

        producer = Asm("produce", argc=0)
        producer.pause(2_000)
        producer.getstatic("T", "lock")
        with producer.sync():
            producer.const(1).putstatic("T", "flag")
            producer.getstatic("T", "lock").notify()
        producer.ret()
        return build_class(
            "T", ["lock:ref", "flag:int", "observed:int"],
            [consumer, producer],
        )

    def test_wait_blocks_until_notify(self):
        vm = make_vm()
        install(vm, self._pingpong_class())
        vm.spawn("T", "consume", name="consumer")
        vm.spawn("T", "produce", name="producer")
        vm.run()
        assert out_of(vm, "observed") == 1

    def test_wait_releases_monitor_while_waiting(self):
        """The producer can enter the monitor while the consumer waits —
        i.e. wait released it."""
        vm = make_vm()
        install(vm, self._pingpong_class())
        vm.spawn("T", "consume", name="consumer")
        vm.spawn("T", "produce", name="producer")
        vm.run()
        producer_acquires = [
            e for e in vm.tracer.of_kind("acquire")
            if e.thread == "producer"
        ]
        assert producer_acquires

    def test_notify_all_wakes_everyone(self):
        consumer = Asm("consume", argc=0)
        consumer.getstatic("T", "lock")
        with consumer.sync():
            consumer.while_(
                lambda: consumer.getstatic("T", "flag").not_(),
                lambda: consumer.getstatic("T", "lock").wait_(),
            )
            consumer.getstatic("T", "woken").const(1).add()
            consumer.putstatic("T", "woken")
        consumer.ret()

        producer = Asm("produce", argc=0)
        producer.pause(3_000)
        producer.getstatic("T", "lock")
        with producer.sync():
            producer.const(1).putstatic("T", "flag")
            producer.getstatic("T", "lock").notifyall()
        producer.ret()

        vm = make_vm()
        install(vm, build_class(
            "T", ["lock:ref", "flag:int", "woken:int"],
            [consumer, producer],
        ))
        for k in range(3):
            vm.spawn("T", "consume", name=f"c{k}")
        vm.spawn("T", "produce", name="p")
        vm.run()
        assert out_of(vm, "woken") == 3

    def test_notify_without_waiters_is_noop(self):
        run = Asm("run", argc=0)
        run.getstatic("T", "lock")
        with run.sync():
            run.getstatic("T", "lock").notify()
            run.getstatic("T", "lock").notifyall()
        run.ret()
        vm = make_vm()
        install(vm, lock_class(methods=[run]))
        vm.spawn("T", "run", name="a")
        vm.run()  # completes without error

    def test_wait_without_ownership_raises(self):
        run = Asm("run", argc=0)
        run.getstatic("T", "lock").wait_()
        run.ret()
        vm = make_vm()
        install(vm, lock_class(methods=[run]))
        vm.spawn("T", "run", name="a")
        with pytest.raises(UncaughtGuestException) as exc_info:
            vm.run()
        assert exc_info.value.exc_class == "IllegalMonitorStateException"

    def test_notify_without_ownership_raises(self):
        run = Asm("run", argc=0)
        run.getstatic("T", "lock").notify()
        run.ret()
        vm = make_vm()
        install(vm, lock_class(methods=[run]))
        vm.spawn("T", "run", name="a")
        with pytest.raises(UncaughtGuestException) as exc_info:
            vm.run()
        assert exc_info.value.exc_class == "IllegalMonitorStateException"

    def test_timed_wait_times_out(self):
        run = Asm("run", argc=0)
        run.getstatic("T", "lock")
        with run.sync():
            run.time().putstatic("T", "t0")
            run.getstatic("T", "lock").const(5_000).timed_wait()
            run.time().putstatic("T", "t1")
        run.ret()
        vm = make_vm()
        install(vm, lock_class("t0:int", "t1:int", methods=[run]))
        vm.spawn("T", "run", name="a")
        vm.run()
        assert out_of(vm, "t1") - out_of(vm, "t0") >= 5_000

    def test_timed_wait_notified_before_timeout(self):
        waiter = Asm("waiter", argc=0)
        waiter.getstatic("T", "lock")
        with waiter.sync():
            waiter.getstatic("T", "lock").const(1_000_000).timed_wait()
            waiter.time().putstatic("T", "woke_at")
        waiter.ret()

        notifier = Asm("notifier", argc=0)
        notifier.pause(2_000)
        notifier.getstatic("T", "lock")
        with notifier.sync():
            notifier.getstatic("T", "lock").notify()
        notifier.ret()

        vm = make_vm()
        install(vm, lock_class("woke_at:int", methods=[waiter, notifier]))
        vm.spawn("T", "waiter", name="w")
        vm.spawn("T", "notifier", name="n")
        vm.run()
        assert 0 < out_of(vm, "woke_at") < 1_000_000

    def test_wait_restores_recursion_count(self):
        """wait inside a recursively-held monitor reacquires all levels."""
        waiter = Asm("waiter", argc=0)
        waiter.getstatic("T", "lock")
        with waiter.sync():
            waiter.getstatic("T", "lock")
            with waiter.sync():
                waiter.getstatic("T", "lock").wait_()
                waiter.const(1).putstatic("T", "resumed")
        waiter.ret()

        notifier = Asm("notifier", argc=0)
        notifier.pause(2_000)
        notifier.getstatic("T", "lock")
        with notifier.sync():
            notifier.getstatic("T", "lock").notify()
        notifier.ret()

        vm = make_vm()
        install(vm, lock_class("resumed:int", methods=[waiter, notifier]))
        vm.spawn("T", "waiter", name="w")
        vm.spawn("T", "notifier", name="n")
        vm.run()
        assert out_of(vm, "resumed") == 1
        assert vm.get_static("T", "lock").monitor.owner is None


class TestSleepYield:
    def test_sleep_advances_virtual_time(self):
        run = Asm("run", argc=0)
        run.time().putstatic("T", "t0")
        run.const(10_000).sleep()
        run.time().putstatic("T", "t1")
        run.ret()
        vm = make_vm()
        vm.load(build_class("T", ["t0:int", "t1:int"], [run]))
        vm.spawn("T", "run", name="a")
        vm.run()
        assert out_of(vm, "t1") - out_of(vm, "t0") >= 10_000

    def test_all_sleeping_advances_clock(self):
        """When every thread sleeps, the scheduler jumps virtual time."""
        run = Asm("run", argc=0)
        run.const(50_000).sleep()
        run.ret()
        vm = make_vm()
        vm.load(build_class("T", [], [run]))
        vm.spawn("T", "run", name="a")
        vm.spawn("T", "run", name="b")
        vm.run()
        assert vm.clock.now >= 50_000

    def test_yield_rotates_threads(self):
        run = Asm("run", argc=1)
        i = run.local()
        run.for_range(i, lambda: run.const(3), lambda: (
            # append tid to order array
            run.getstatic("T", "order"),
            run.getstatic("T", "next"),
            run.tid(),
            run.astore(),
            run.getstatic("T", "next").const(1).add(),
            run.putstatic("T", "next"),
            run.yield_(),
        ))
        run.ret()
        vm = make_vm()
        vm.load(build_class("T", ["order:ref", "next:int"], [run]))
        vm.set_static("T", "order", vm.new_array(6, -1))
        vm.spawn("T", "run", args=[0], name="a")
        vm.spawn("T", "run", args=[0], name="b")
        vm.run()
        order = vm.get_static("T", "order").snapshot()
        assert order == [0, 1, 0, 1, 0, 1]  # perfect alternation via yield

    def test_quantum_preemption_interleaves(self):
        """No yields, no sleeps: quantum expiry alone must interleave."""
        run = Asm("run", argc=0)
        i = run.local()
        run.for_range(i, lambda: run.const(5_000), lambda: (
            run.getstatic("T", "last"), run.pop(),
            run.tid(), run.putstatic("T", "last"),
        ))
        run.ret()
        vm = make_vm()
        vm.load(build_class("T", ["last:int"], [run]))
        vm.spawn("T", "run", name="a")
        vm.spawn("T", "run", name="b")
        vm.run()
        assert vm.scheduler.context_switches > 2
