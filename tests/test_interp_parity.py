"""Differential parity: the fast interpreter vs the reference oracle.

The predecoded threaded-dispatch interpreter (:mod:`repro.vm.fastinterp`)
must be *observationally indistinguishable* from the reference
interpreter: identical virtual clock totals **and** clock event counts
(every ``advance()`` call, even ``advance(0)``, is part of the
determinism fingerprint), identical trace event streams, identical
metrics, and identical checker fingerprints.  These tests run the same
guest program once per interpreter and compare all of it.

Two process-global counters would otherwise poison the comparison — they
are build/run ordinal counters, not interpreter state:

* ``Asm._sync_counter`` numbers monitor sync ids at *assembly* time, so
  building the same workload twice in one process yields different sync
  ids baked into the bytecode;
* ``repro.core.sections._section_ids`` numbers critical sections at *run*
  time across all VMs in the process.

``_fresh()`` resets both before every build+run so the two interpreters
see byte-identical programs and emit byte-identical section names.
"""

from __future__ import annotations

import itertools

import pytest

from repro.bench.harness import run_microbench
from repro.bench.microbench import MicrobenchConfig
from repro.bench.workloads import (
    build_bank,
    build_bounded_buffer,
    build_deadlock_pair,
    build_medium_inversion,
    build_philosophers,
)
from repro.check.oracle import final_fingerprint, fingerprint_digest
from repro.check.scenarios import scenarios
from repro.core import sections
from repro.errors import DeadlockError, UncaughtGuestException
from repro.vm.assembler import Asm
from repro.vm.vmcore import JVM, VMOptions

MODES = ("unmodified", "rollback", "inheritance", "ceiling")
INTERPS = ("reference", "fast")


def _fresh() -> None:
    """Reset the process-global build/run counters (see module docstring)."""
    Asm._sync_counter = 0
    sections._section_ids = itertools.count(1)


def _snap(vm: JVM, outcome: str) -> dict:
    """Everything an interpreter can observably influence, in one dict."""
    import hashlib

    from repro.obs.export import chrome_trace_bytes, spans_jsonl_bytes
    from repro.obs.spans import build_spans

    # observability artifacts are derived from the trace + clock, so
    # they too must be byte-identical across interpreters
    spans = build_spans(vm.tracer.events, vm.clock.now)
    jsonl = spans_jsonl_bytes(spans)
    chrome = chrome_trace_bytes(
        spans,
        thread_names=[t.name for t in vm.threads],
        clock_now=vm.clock.now,
    )
    return {
        "outcome": outcome,
        "clock_now": vm.clock.now,
        "clock_events": vm.clock.events,
        "fingerprint": fingerprint_digest(final_fingerprint(vm, outcome)),
        "metrics": vm.metrics(),
        "trace": list(vm.tracer.events),
        "spans_sha": hashlib.sha256(jsonl).hexdigest(),
        "chrome_sha": hashlib.sha256(chrome).hexdigest(),
    }


def _run_workload(build, mode: str, interp: str, **overrides) -> dict:
    _fresh()
    workload = build()
    opts = dict(
        mode=mode, interp=interp, trace=True, seed=7,
        max_cycles=50_000_000,
    )
    opts.update(overrides)
    vm = JVM(VMOptions(**opts))
    workload.install(vm)
    outcome = "ok"
    try:
        vm.run()
    except DeadlockError:
        outcome = "deadlock"
    except UncaughtGuestException as exc:
        outcome = f"uncaught:{exc}"
    return _snap(vm, outcome)


def _assert_identical(build, mode: str, **overrides) -> None:
    ref = _run_workload(build, mode, "reference", **overrides)
    fast = _run_workload(build, mode, "fast", **overrides)
    # Compare field by field so a failure names the diverging channel.
    for key in ref:
        assert fast[key] == ref[key], f"{mode}: {key} diverged"


# ------------------------------------------------------- checker scenarios
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("name", sorted(scenarios()))
def test_checker_scenario_parity(name: str, mode: str) -> None:
    scenario = scenarios()[name]
    _assert_identical(scenario.build, mode, **scenario.options)


# ------------------------------------------- one figure workload per policy
# Pair each policy mode with a different workload so the suite covers
# the product cheaply: revocation (rollback), priority donation
# (inheritance), eager boosting (ceiling), plain scheduling (unmodified),
# each over a distinct synchronization shape.
POLICY_WORKLOADS = [
    ("unmodified", lambda: build_bounded_buffer(
        capacity=2, items_per_producer=6, producers=2, consumers=2)),
    ("rollback", lambda: build_medium_inversion(
        medium_threads=2, low_section_iters=300, medium_work_iters=500,
        high_section_iters=60)),
    ("inheritance", lambda: build_bank(
        accounts=4, transfers=10, hold_cycles=120)),
    ("ceiling", lambda: build_philosophers(3, rounds=3, think_cycles=300,
                                           eat_iters=15)),
]


@pytest.mark.parametrize(
    "mode,build", POLICY_WORKLOADS, ids=[m for m, _ in POLICY_WORKLOADS]
)
def test_policy_workload_parity(mode: str, build) -> None:
    _assert_identical(build, mode)


def test_deadlock_outcome_parity() -> None:
    """Both interpreters must deadlock identically (or revoke out of it)."""
    for mode in ("unmodified", "rollback"):
        _assert_identical(
            lambda: build_deadlock_pair(hold_cycles=800, work=20), mode
        )


# ------------------------------------------------------ figure micro-bench
@pytest.mark.parametrize("mode", MODES)
def test_microbench_parity(mode: str) -> None:
    """One scaled-down figure point per policy through the real harness."""
    config = MicrobenchConfig(
        high_threads=2, low_threads=2, iters_high=25, iters_low=50,
        sections=4, write_pct=60, pause_mean=2_000, seed=42,
    )
    results = {}
    for interp in INTERPS:
        _fresh()
        results[interp] = run_microbench(
            config, mode, options=VMOptions(interp=interp)
        )
    assert results["fast"] == results["reference"]


# --------------------------------------------------- exception-path parity
# Faults raised from *inside* a fused block exercise the cost-repair path
# (suffix subtraction + fault-pc rewind); the outcomes, handler-relative
# clock values and traces must match the reference exactly.
def _exception_workloads():
    from conftest import build_class

    def guest(emit) -> object:
        def build():
            a = Asm("main")
            emit(a)
            a.ret()
            cls = build_class("Exc", ["out", "err"], [a])

            from repro.bench.workloads import Workload

            return Workload(
                name="exc", classdef=cls, setup=lambda vm: None,
                spawns=[("main", [], 5, "t0")],
            )
        return build

    def div_zero(a: Asm) -> None:
        # caught ArithmeticException after fused arithmetic ran
        def body():
            a.const(7).const(21).const(3).div().add()
            a.const(5).const(0).div()          # faults mid-block
            a.putstatic("Exc", "out")
        def on_arith():
            a.pop()
            a.const(-1).putstatic("Exc", "err")
        a.try_(body, catches=[("ArithmeticException", on_arith)])
        a.getstatic("Exc", "err").putstatic("Exc", "out")

    def array_oob(a: Asm) -> None:
        def body():
            a.const(4).newarray(0)
            a.const(9).const(2).astore()        # index 9 > length: faults
        def on_oob():
            a.pop()
            a.const(13).putstatic("Exc", "err")
        a.try_(body, catches=[("ArrayIndexOutOfBoundsException", on_oob)])

    def npe(a: Asm) -> None:
        def body():
            a.const(None).getfield("x")         # NPE inside a fused block
            a.putstatic("Exc", "out")
        def on_npe():
            a.pop()
            a.const(99).putstatic("Exc", "err")
        a.try_(body, catches=[("NullPointerException", on_npe)])

    def uncaught(a: Asm) -> None:
        a.const(3).const(1).sub()
        a.const(1).const(0).mod()               # uncaught: kills the thread

    return [
        ("div-zero", guest(div_zero)),
        ("array-oob", guest(array_oob)),
        ("npe", guest(npe)),
        ("uncaught", guest(uncaught)),
    ]


@pytest.mark.parametrize(
    "name,build_factory", _exception_workloads(),
    ids=[n for n, _ in _exception_workloads()],
)
@pytest.mark.parametrize("mode", ("unmodified", "rollback"))
def test_exception_path_parity(name, build_factory, mode) -> None:
    _assert_identical(build_factory, mode)


# ----------------------------------------------------- reference forcing
def test_trace_memory_forces_reference() -> None:
    """The lockset pass needs per-access events, which fused heap ops do
    not emit; ``effective_interp`` must fall back to the reference."""
    opts = VMOptions(trace=True, trace_memory=True)
    assert opts.interp == "fast"
    assert opts.effective_interp == "reference"

    from repro.vm.fastinterp import FastInterpreter
    from repro.vm.interpreter import Interpreter

    vm = JVM(opts)
    assert type(vm.interpreter) is Interpreter
    vm2 = JVM(VMOptions(trace=True))
    assert type(vm2.interpreter) is FastInterpreter
