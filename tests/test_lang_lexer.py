"""Unit tests for the MiniJava lexer."""

import pytest

from repro.lang.lexer import LexError, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)]


def texts(src):
    return [t.text for t in tokenize(src)[:-1]]  # drop eof


class TestBasics:
    def test_empty_source_is_just_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "eof"

    def test_keywords_vs_identifiers(self):
        toks = tokenize("class Foo while whilex")
        assert [t.kind for t in toks[:-1]] == [
            "keyword", "ident", "keyword", "ident",
        ]

    def test_integer_literal(self):
        tok = tokenize("1234")[0]
        assert tok.kind == "int" and tok.value == 1234

    def test_integer_with_underscores(self):
        assert tokenize("1_000_000")[0].value == 1000000

    def test_float_literal(self):
        tok = tokenize("3.25")[0]
        assert tok.kind == "float" and tok.value == 3.25

    def test_int_dot_ident_is_not_float(self):
        # "1.x" must lex as int, '.', ident (field access on a literal is
        # nonsense but the lexer should not eat the dot into a float)
        assert kinds("1.x")[:3] == ["int", "op", "ident"]

    def test_string_literal_with_escapes(self):
        tok = tokenize(r'"a\nb\"c\\d"')[0]
        assert tok.kind == "string"
        assert tok.value == 'a\nb"c\\d'

    def test_maximal_munch_operators(self):
        assert texts("<<= == = <= <") == ["<<", "=", "==", "=", "<=", "<"]

    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  bb")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("a /* never closed")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected"):
            tokenize("a @ b")

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize('"abc')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"ab\ncd"')

    def test_error_carries_position(self):
        with pytest.raises(LexError) as exc_info:
            tokenize("ok\n   $")
        assert exc_info.value.line == 2
