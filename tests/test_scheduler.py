"""Scheduler tests: round-robin fairness, priority preemption, stall
detection, sleep bookkeeping, wait-for-cycle detection, and the pluggable
decision hook used by the schedule explorer."""

import pytest

from repro import Asm, DeadlockError, Monitor, ThreadState, VMThread
from repro.errors import ScheduleError
from repro.vm.clock import CostModel
from repro.vm.scheduler import find_wait_cycle

from conftest import build_class, make_vm


def _timed_loop_method():
    """run(is_high): spin 3000 iterations, then record the finish time in
    high_end or low_end depending on the argument."""
    run = Asm("run", argc=1)
    i = run.local()
    run.for_range(i, lambda: run.const(3_000), lambda: run.const(0).pop())
    run.time()
    run.if_then(
        lambda: run.load(0),
        lambda: run.putstatic("T", "high_end"),
        lambda: run.putstatic("T", "low_end"),
    )
    run.ret()
    return run


class TestRoundRobin:
    def test_round_robin_ignores_priority(self):
        """The Jikes scheduler the paper uses is priority-blind: a
        low-priority CPU hog is not starved by a high-priority one."""
        run = _timed_loop_method()
        vm = make_vm(scheduler="round-robin")
        vm.load(build_class("T", ["low_end:int", "high_end:int"], [run]))
        vm.spawn("T", "run", args=[0], priority=1, name="low")
        vm.spawn("T", "run", args=[1], priority=10, name="high")
        vm.run()
        low_end = vm.get_static("T", "low_end")
        high_end = vm.get_static("T", "high_end")
        # round robin: both finish around the same time (within a couple of
        # quanta), rather than low waiting for high to finish entirely
        assert abs(low_end - high_end) < vm.cost_model.quantum * 4

    def test_slices_and_switches_counted(self):
        run = Asm("run", argc=0)
        i = run.local()
        run.for_range(i, lambda: run.const(5_000), lambda:
                      run.const(0).pop())
        run.ret()
        vm = make_vm()
        vm.load(build_class("T", [], [run]))
        vm.spawn("T", "run", name="a")
        vm.spawn("T", "run", name="b")
        vm.run()
        assert vm.scheduler.slices > 2
        assert vm.scheduler.context_switches >= 2

    def test_context_switch_costs_charged(self):
        def elapsed(threads):
            run = Asm("run", argc=0)
            i = run.local()
            run.for_range(i, lambda: run.const(4_000), lambda:
                          run.const(0).pop())
            run.ret()
            vm = make_vm()
            vm.load(build_class("T", [], [run]))
            for k in range(threads):
                vm.spawn("T", "run", name=f"t{k}")
            vm.run()
            return vm.clock.now, vm.scheduler.context_switches

        one, sw1 = elapsed(1)
        two, sw2 = elapsed(2)
        assert sw2 > sw1
        # two threads do twice the work plus the context-switch overhead
        assert two > 2 * one


class TestPriorityScheduler:
    def test_strict_priority_runs_high_first(self):
        """Under the strict scheduler, the high-priority thread finishes
        before the low one even when spawned second."""
        run = _timed_loop_method()
        vm = make_vm(scheduler="priority")
        vm.load(build_class("T", ["low_end:int", "high_end:int"], [run]))
        vm.spawn("T", "run", args=[0], priority=1, name="low")
        vm.spawn("T", "run", args=[1], priority=10, name="high")
        vm.run()
        assert vm.get_static("T", "high_end") < vm.get_static("T", "low_end")

    def test_preemption_when_higher_wakes(self):
        """A sleeping high-priority thread preempts the low one at its next
        yield point when it wakes."""
        low = Asm("low", argc=0)
        i = low.local()
        low.for_range(i, lambda: low.const(20_000), lambda:
                      low.const(0).pop())
        low.time().putstatic("T", "low_end")
        low.ret()

        high = Asm("high", argc=0)
        high.const(3_000).sleep()
        high.time().putstatic("T", "high_end")
        high.ret()

        vm = make_vm(scheduler="priority")
        vm.load(build_class("T", ["low_end:int", "high_end:int"],
                            [low, high]))
        vm.spawn("T", "low", priority=1, name="low")
        vm.spawn("T", "high", priority=10, name="high")
        vm.run()
        assert vm.get_static("T", "high_end") < vm.get_static("T", "low_end")

    def test_fifo_within_level(self):
        order: list[str] = []

        def recorder(vm_, thread, args):
            order.append(thread.name)
            return None

        run = Asm("run", argc=0)
        run.native("mark", 0)
        run.ret()
        vm = make_vm(scheduler="priority")
        vm.register_native("mark", recorder)
        vm.load(build_class("T", [], [run]))
        for k in range(3):
            vm.spawn("T", "run", priority=5, name=f"t{k}")
        vm.run()
        assert order == ["t0", "t1", "t2"]


class TestStallDetection:
    def test_pure_wait_stall_raises(self):
        """A thread waiting with nobody to notify is a stall, not a hang."""
        run = Asm("run", argc=0)
        run.getstatic("T", "lock")
        with run.sync():
            run.getstatic("T", "lock").wait_()
        run.ret()
        vm = make_vm()
        vm.load(build_class("T", ["lock:ref"], [run]))
        vm.set_static("T", "lock", vm.new_object("T"))
        vm.spawn("T", "run", name="a")
        with pytest.raises(DeadlockError, match="stall"):
            vm.run()

    def test_timed_wait_is_not_a_stall(self):
        run = Asm("run", argc=0)
        run.getstatic("T", "lock")
        with run.sync():
            run.getstatic("T", "lock").const(5_000).timed_wait()
        run.ret()
        vm = make_vm()
        vm.load(build_class("T", ["lock:ref"], [run]))
        vm.set_static("T", "lock", vm.new_object("T"))
        vm.spawn("T", "run", name="a")
        vm.run()  # completes via timeout

    def test_empty_vm_runs_to_completion(self):
        vm = make_vm()
        vm.run()
        assert vm.clock.now == 0


class TestSleepers:
    def test_sleepers_wake_in_time_order(self):
        order: list[str] = []

        def recorder(vm_, thread, args):
            order.append(thread.name)
            return None

        run = Asm("run", argc=1)
        run.load(0).sleep()
        run.native("mark", 0)
        run.ret()
        vm = make_vm()
        vm.register_native("mark", recorder)
        vm.load(build_class("T", [], [run]))
        vm.spawn("T", "run", args=[30_000], name="late")
        vm.spawn("T", "run", args=[10_000], name="early")
        vm.run()
        assert order == ["early", "late"]

    def test_start_time_recorded_at_first_schedule(self):
        run = Asm("run", argc=0)
        run.ret()
        vm = make_vm()
        vm.load(build_class("T", [], [run]))
        t = vm.spawn("T", "run", name="a")
        assert t.start_time is None
        vm.run()
        assert t.start_time is not None
        assert t.end_time >= t.start_time
        assert t.elapsed() == t.end_time - t.start_time


def _bare_thread(tid: int, name: str) -> VMThread:
    run = Asm("run", argc=0)
    run.ret()
    return VMThread(tid, name, run.build(), [])


def _block_on(thread: VMThread, owner: VMThread) -> Monitor:
    """Make ``thread`` BLOCKED on a fresh monitor owned by ``owner``."""
    mon = Monitor(object())
    mon.owner = owner
    thread.state = ThreadState.BLOCKED
    thread.blocked_on = mon
    return mon


class TestFindWaitCycle:
    def test_no_blocked_threads(self):
        assert find_wait_cycle([_bare_thread(1, "a")]) is None

    def test_self_cycle(self):
        """A thread blocked on a monitor it owns itself (possible only
        through corrupted state, but the walker must not loop forever)."""
        t = _bare_thread(1, "a")
        _block_on(t, t)
        assert find_wait_cycle([t]) == [t]

    def test_chain_without_cycle(self):
        """a -> b -> c where c is runnable: no cycle."""
        a, b, c = (_bare_thread(k, n) for k, n in enumerate("abc"))
        _block_on(a, b)
        _block_on(b, c)
        c.state = ThreadState.READY
        assert find_wait_cycle([a, b, c]) is None

    def test_multi_monitor_ring(self):
        """Three threads, three monitors, blocked in a ring: the cycle
        comes back in wait-for order."""
        a, b, c = (_bare_thread(k, n) for k, n in enumerate("abc"))
        _block_on(a, b)
        _block_on(b, c)
        _block_on(c, a)
        cycle = find_wait_cycle([a, b, c])
        assert cycle is not None and len(cycle) == 3
        for waiter, owner in zip(cycle, cycle[1:] + cycle[:1]):
            assert waiter.blocked_on.owner is owner

    def test_tail_outside_cycle_is_excluded(self):
        """t -> a -> b -> a: the reported cycle is [a, b], without the
        tail thread that merely waits on it."""
        t, a, b = (_bare_thread(k, n) for k, n in enumerate("tab"))
        _block_on(t, a)
        _block_on(a, b)
        _block_on(b, a)
        cycle = find_wait_cycle([t, a, b])
        assert cycle is not None
        assert set(c.name for c in cycle) == {"a", "b"}

    def test_blocked_on_unowned_monitor(self):
        """blocked_on with no owner (release raced the walk): no cycle."""
        a = _bare_thread(1, "a")
        mon = Monitor(object())
        a.state = ThreadState.BLOCKED
        a.blocked_on = mon
        assert find_wait_cycle([a]) is None


def _spin_method(iters: int = 200) -> Asm:
    run = Asm("run", argc=0)
    i = run.local()
    run.for_range(i, lambda: run.const(iters), lambda: run.const(0).pop())
    run.ret()
    return run


def _hook_vm(scheduler: str = "round-robin"):
    """Two spinning threads on a one-cycle quantum: every back-edge is a
    scheduling decision the hook gets to make."""
    vm = make_vm(scheduler=scheduler, cost_model=CostModel(quantum=1))
    vm.load(build_class("T", [], [_spin_method()]))
    a = vm.spawn("T", "run", priority=1, name="a")
    b = vm.spawn("T", "run", priority=10, name="b")
    return vm, a, b


class TestDecisionHook:
    def test_hook_drives_round_robin(self):
        vm, a, b = _hook_vm()
        vm.scheduler.decision_hook = lambda cands: cands[-1].tid
        vm.run()
        assert vm.scheduler.decisions > 0
        choices = vm.tracer.of_kind("schedule_choice")
        assert choices
        assert choices[0].details["decision"] == 1
        assert choices[0].details["candidates"] == (a.tid, b.tid)

    def test_hook_overrides_strict_priority(self):
        """The hook sees every READY thread, so exploration can schedule a
        low-priority thread under the strict scheduler too."""
        vm, a, b = _hook_vm(scheduler="priority")
        picked_low = []

        def hook(cands):
            tids = [t.tid for t in cands]
            if a.tid in tids and len(tids) > 1:
                picked_low.append(True)
                return a.tid
            return tids[0]

        vm.scheduler.decision_hook = hook
        vm.run()
        assert picked_low                     # low ran while high was ready
        assert a.state is ThreadState.TERMINATED
        assert b.state is ThreadState.TERMINATED

    def test_hook_exception_propagates(self):
        vm, _, _ = _hook_vm()

        def hook(cands):
            raise RuntimeError("hook exploded")

        vm.scheduler.decision_hook = hook
        with pytest.raises(RuntimeError, match="hook exploded"):
            vm.run()

    def test_hook_unknown_tid_raises_schedule_error(self):
        vm, a, b = _hook_vm()
        vm.scheduler.decision_hook = lambda cands: 999
        with pytest.raises(ScheduleError) as err:
            vm.run()
        assert err.value.chosen == 999
        assert set(err.value.candidates) == {a.tid, b.tid}

    def test_hook_choosing_dead_thread_raises(self):
        """Insisting on a thread that has terminated is a ScheduleError
        carrying the offending tid and the actual candidates."""
        vm, a, b = _hook_vm()
        vm.scheduler.decision_hook = lambda cands: b.tid
        with pytest.raises(ScheduleError) as err:
            vm.run()
        assert b.state is ThreadState.TERMINATED
        assert err.value.chosen == b.tid
        assert err.value.candidates == [a.tid]
        assert "ready candidates" in str(err.value)

    def test_hook_choosing_blocked_thread_raises(self):
        """A hook that keeps choosing a thread after it blocks on a
        monitor gets a ScheduleError, not a silent fallback."""
        run = Asm("run", argc=0)
        i = run.local()
        run.getstatic("T", "lock")
        with run.sync():
            run.for_range(i, lambda: run.const(50), lambda:
                          run.const(0).pop())
        run.ret()
        vm = make_vm(cost_model=CostModel(quantum=1))
        vm.load(build_class("T", ["lock:ref"], [run]))
        vm.set_static("T", "lock", vm.new_object("T"))
        a = vm.spawn("T", "run", priority=5, name="a")
        b = vm.spawn("T", "run", priority=5, name="b")
        warmup = 10  # let a enter the section, then insist on b

        def hook(cands):
            nonlocal warmup
            tids = [t.tid for t in cands]
            if warmup > 0 and a.tid in tids:
                warmup -= 1
                return a.tid
            return b.tid

        vm.scheduler.decision_hook = hook
        with pytest.raises(ScheduleError) as err:
            vm.run()
        assert err.value.chosen == b.tid
        assert b.state is ThreadState.BLOCKED

    def test_walk_budget_exhausted_mid_section_stays_legal(self):
        """A bounded random walk that spends its budget inside a critical
        section must keep the run legal: it pins the running thread from
        then on, the program completes, and preemptions never exceed the
        bound."""
        from repro.check.explorer import (
            ScheduleController,
            run_schedule,
        )
        from repro.check.scenarios import get_scenario
        from repro.util.rng import DeterministicRng

        scenario = get_scenario("handoff")
        for seed in range(5):
            ctrl = ScheduleController(
                rng=DeterministicRng(seed), bound=2
            )
            vm, outcome = run_schedule(scenario, "rollback", ctrl)
            assert outcome == "completed"
            assert ctrl.preemptions <= 2
            assert vm.get_static("Handoff", "counter") == 8

    def test_decisions_counted_only_under_hook(self):
        vm, _, _ = _hook_vm()
        vm.run()
        assert vm.scheduler.decisions == 0
        vm2, _, _ = _hook_vm()
        vm2.scheduler.decision_hook = lambda cands: cands[0].tid
        vm2.run()
        assert vm2.scheduler.decisions > 0


class TestSleeperHeapStaleness:
    def test_cancelled_entry_is_pruned(self):
        vm = make_vm()
        sched = vm.scheduler
        t = _bare_thread(1, "s")
        sched.add_sleeper(t, 100)
        sched.remove_sleeper(t)
        assert sched.pending_wake_time() == 1 << 62
        assert not sched._sleepers  # lazy prune drained the stale entry

    def test_rearmed_entry_shadows_the_stale_one(self):
        vm = make_vm()
        sched = vm.scheduler
        t = _bare_thread(1, "s")
        sched.add_sleeper(t, 100)
        sched.remove_sleeper(t)
        sched.add_sleeper(t, 200)
        assert sched.pending_wake_time() == 200
        assert len(sched._sleepers) == 1

    def test_wake_skips_stale_and_fires_once(self):
        """Re-arming to an earlier time leaves a later stale entry in the
        heap; the thread must wake exactly once, at the new time."""
        vm = make_vm()
        sched = vm.scheduler
        t = _bare_thread(1, "s")
        t.state = ThreadState.SLEEPING
        sched.add_sleeper(t, 100)
        sched.add_sleeper(t, 50)  # re-arm earlier; the 100 entry is stale
        vm.clock.advance_to(60)
        sched._wake_due_sleepers()
        assert t.state is ThreadState.READY
        assert t.wakeup_time == -1
        # the stale 100 entry must not resurrect the thread
        t.state = ThreadState.SLEEPING
        vm.clock.advance_to(150)
        sched._wake_due_sleepers()
        assert t.state is ThreadState.SLEEPING
        assert sched._next_sleeper_time() is None
