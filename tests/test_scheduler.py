"""Scheduler tests: round-robin fairness, priority preemption, stall
detection, sleep bookkeeping."""

import pytest

from repro import Asm, DeadlockError

from conftest import build_class, make_vm


def _timed_loop_method():
    """run(is_high): spin 3000 iterations, then record the finish time in
    high_end or low_end depending on the argument."""
    run = Asm("run", argc=1)
    i = run.local()
    run.for_range(i, lambda: run.const(3_000), lambda: run.const(0).pop())
    run.time()
    run.if_then(
        lambda: run.load(0),
        lambda: run.putstatic("T", "high_end"),
        lambda: run.putstatic("T", "low_end"),
    )
    run.ret()
    return run


class TestRoundRobin:
    def test_round_robin_ignores_priority(self):
        """The Jikes scheduler the paper uses is priority-blind: a
        low-priority CPU hog is not starved by a high-priority one."""
        run = _timed_loop_method()
        vm = make_vm(scheduler="round-robin")
        vm.load(build_class("T", ["low_end:int", "high_end:int"], [run]))
        vm.spawn("T", "run", args=[0], priority=1, name="low")
        vm.spawn("T", "run", args=[1], priority=10, name="high")
        vm.run()
        low_end = vm.get_static("T", "low_end")
        high_end = vm.get_static("T", "high_end")
        # round robin: both finish around the same time (within a couple of
        # quanta), rather than low waiting for high to finish entirely
        assert abs(low_end - high_end) < vm.cost_model.quantum * 4

    def test_slices_and_switches_counted(self):
        run = Asm("run", argc=0)
        i = run.local()
        run.for_range(i, lambda: run.const(5_000), lambda:
                      run.const(0).pop())
        run.ret()
        vm = make_vm()
        vm.load(build_class("T", [], [run]))
        vm.spawn("T", "run", name="a")
        vm.spawn("T", "run", name="b")
        vm.run()
        assert vm.scheduler.slices > 2
        assert vm.scheduler.context_switches >= 2

    def test_context_switch_costs_charged(self):
        def elapsed(threads):
            run = Asm("run", argc=0)
            i = run.local()
            run.for_range(i, lambda: run.const(4_000), lambda:
                          run.const(0).pop())
            run.ret()
            vm = make_vm()
            vm.load(build_class("T", [], [run]))
            for k in range(threads):
                vm.spawn("T", "run", name=f"t{k}")
            vm.run()
            return vm.clock.now, vm.scheduler.context_switches

        one, sw1 = elapsed(1)
        two, sw2 = elapsed(2)
        assert sw2 > sw1
        # two threads do twice the work plus the context-switch overhead
        assert two > 2 * one


class TestPriorityScheduler:
    def test_strict_priority_runs_high_first(self):
        """Under the strict scheduler, the high-priority thread finishes
        before the low one even when spawned second."""
        run = _timed_loop_method()
        vm = make_vm(scheduler="priority")
        vm.load(build_class("T", ["low_end:int", "high_end:int"], [run]))
        vm.spawn("T", "run", args=[0], priority=1, name="low")
        vm.spawn("T", "run", args=[1], priority=10, name="high")
        vm.run()
        assert vm.get_static("T", "high_end") < vm.get_static("T", "low_end")

    def test_preemption_when_higher_wakes(self):
        """A sleeping high-priority thread preempts the low one at its next
        yield point when it wakes."""
        low = Asm("low", argc=0)
        i = low.local()
        low.for_range(i, lambda: low.const(20_000), lambda:
                      low.const(0).pop())
        low.time().putstatic("T", "low_end")
        low.ret()

        high = Asm("high", argc=0)
        high.const(3_000).sleep()
        high.time().putstatic("T", "high_end")
        high.ret()

        vm = make_vm(scheduler="priority")
        vm.load(build_class("T", ["low_end:int", "high_end:int"],
                            [low, high]))
        vm.spawn("T", "low", priority=1, name="low")
        vm.spawn("T", "high", priority=10, name="high")
        vm.run()
        assert vm.get_static("T", "high_end") < vm.get_static("T", "low_end")

    def test_fifo_within_level(self):
        order: list[str] = []

        def recorder(vm_, thread, args):
            order.append(thread.name)
            return None

        run = Asm("run", argc=0)
        run.native("mark", 0)
        run.ret()
        vm = make_vm(scheduler="priority")
        vm.register_native("mark", recorder)
        vm.load(build_class("T", [], [run]))
        for k in range(3):
            vm.spawn("T", "run", priority=5, name=f"t{k}")
        vm.run()
        assert order == ["t0", "t1", "t2"]


class TestStallDetection:
    def test_pure_wait_stall_raises(self):
        """A thread waiting with nobody to notify is a stall, not a hang."""
        run = Asm("run", argc=0)
        run.getstatic("T", "lock")
        with run.sync():
            run.getstatic("T", "lock").wait_()
        run.ret()
        vm = make_vm()
        vm.load(build_class("T", ["lock:ref"], [run]))
        vm.set_static("T", "lock", vm.new_object("T"))
        vm.spawn("T", "run", name="a")
        with pytest.raises(DeadlockError, match="stall"):
            vm.run()

    def test_timed_wait_is_not_a_stall(self):
        run = Asm("run", argc=0)
        run.getstatic("T", "lock")
        with run.sync():
            run.getstatic("T", "lock").const(5_000).timed_wait()
        run.ret()
        vm = make_vm()
        vm.load(build_class("T", ["lock:ref"], [run]))
        vm.set_static("T", "lock", vm.new_object("T"))
        vm.spawn("T", "run", name="a")
        vm.run()  # completes via timeout

    def test_empty_vm_runs_to_completion(self):
        vm = make_vm()
        vm.run()
        assert vm.clock.now == 0


class TestSleepers:
    def test_sleepers_wake_in_time_order(self):
        order: list[str] = []

        def recorder(vm_, thread, args):
            order.append(thread.name)
            return None

        run = Asm("run", argc=1)
        run.load(0).sleep()
        run.native("mark", 0)
        run.ret()
        vm = make_vm()
        vm.register_native("mark", recorder)
        vm.load(build_class("T", [], [run]))
        vm.spawn("T", "run", args=[30_000], name="late")
        vm.spawn("T", "run", args=[10_000], name="early")
        vm.run()
        assert order == ["early", "late"]

    def test_start_time_recorded_at_first_schedule(self):
        run = Asm("run", argc=0)
        run.ret()
        vm = make_vm()
        vm.load(build_class("T", [], [run]))
        t = vm.spawn("T", "run", name="a")
        assert t.start_time is None
        vm.run()
        assert t.start_time is not None
        assert t.end_time >= t.start_time
        assert t.elapsed() == t.end_time - t.start_time
