"""Tests for the benchmark generator and harness (paper §4.1)."""

import pytest

from repro.bench.figures import (
    FigurePanel,
    all_panels,
    run_panel,
)
from repro.bench.harness import compare_modes, run_microbench
from repro.bench.microbench import (
    HIGH_PRIORITY,
    LOW_PRIORITY,
    MicrobenchConfig,
    build_microbench_class,
    setup_microbench_vm,
)
from repro.vm import bytecode as bc
from repro.vm.vmcore import JVM, VMOptions

SMALL = MicrobenchConfig(
    high_threads=2, low_threads=4,
    iters_high=60, iters_low=300, sections=4,
    write_pct=50, seed=17,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MicrobenchConfig(write_pct=150)
        with pytest.raises(ValueError):
            MicrobenchConfig(sections=0)

    def test_scaled(self):
        half = SMALL.scaled(0.5)
        assert half.iters_low == 150
        assert half.sections == 2
        assert half.write_pct == SMALL.write_pct

    def test_scaled_floors_at_one(self):
        tiny = SMALL.scaled(0.0001)
        assert tiny.iters_high >= 1 and tiny.sections >= 1


class TestGeneratedProgram:
    def test_program_shape(self):
        cls = build_microbench_class(SMALL)
        run = cls.method("run")
        ops = [ins.op for ins in run.code]
        assert bc.MONITORENTER in ops
        assert bc.PAUSE in ops
        assert bc.ASTORE in ops and bc.ALOAD in ops

    def test_endpoints_keep_uniform_iteration_cost(self):
        """0% and 100% programs still emit BOTH arms and the interleaving
        test, so every sweep point pays the same per-iteration budget."""
        for pct in (0, 100):
            cls = build_microbench_class(
                MicrobenchConfig(write_pct=pct, seed=1)
            )
            ops = [ins.op for ins in cls.method("run").code]
            assert bc.ASTORE in ops and bc.ALOAD in ops
            assert bc.IFNOT in ops or bc.IF in ops

    def test_pure_read_program_never_stores(self):
        """At 0% writes the store arm is dead code: running it logs no
        undo entries beyond zero array stores."""
        from repro.bench.harness import run_microbench

        cfg = MicrobenchConfig(
            high_threads=1, low_threads=1, iters_high=50, iters_low=50,
            sections=2, write_pct=0, seed=1,
        )
        result = run_microbench(cfg, "rollback")
        assert result.undo_logged == 0

    def test_setup_spawns_configured_mix(self):
        vm = JVM(VMOptions(mode="unmodified", seed=SMALL.seed))
        setup_microbench_vm(vm, SMALL)
        highs = [t for t in vm.threads if t.priority == HIGH_PRIORITY]
        lows = [t for t in vm.threads if t.priority == LOW_PRIORITY]
        assert len(highs) == SMALL.high_threads
        assert len(lows) == SMALL.low_threads


class TestHarness:
    def test_run_produces_metrics(self):
        result = run_microbench(SMALL, "unmodified")
        assert result.high_elapsed > 0
        assert result.overall_elapsed >= result.high_elapsed
        assert result.rollbacks == 0

    def test_modified_run_counts_rollbacks(self):
        result = run_microbench(SMALL, "rollback")
        assert result.undo_logged > 0
        assert result.metrics["support"]["sections_entered"] > 0

    def test_same_seed_is_deterministic(self):
        a = run_microbench(SMALL, "rollback")
        b = run_microbench(SMALL, "rollback")
        assert a.high_elapsed == b.high_elapsed
        assert a.total_cycles == b.total_cycles
        assert a.rollbacks == b.rollbacks

    def test_compare_modes_pairs_seeds(self):
        cmp_result = compare_modes(SMALL, repetitions=2)
        assert set(cmp_result.runs) == {"unmodified", "rollback"}
        for runs in cmp_result.runs.values():
            assert len(runs) == 2
        # paired: both modes saw the same derived seeds
        seeds_u = [r.config.seed for r in cmp_result.runs["unmodified"]]
        seeds_m = [r.config.seed for r in cmp_result.runs["rollback"]]
        assert seeds_u == seeds_m
        assert len(set(seeds_u)) == 2

    def test_summary_and_speedup(self):
        cmp_result = compare_modes(SMALL, repetitions=2)
        s = cmp_result.summary("unmodified")
        assert s.n == 2 and s.mean > 0
        assert cmp_result.speedup() > 0


class TestFigureDefinitions:
    def test_twelve_panels(self):
        panels = all_panels()
        assert len(panels) == 12
        assert {p.figure for p in panels} == {5, 6, 7, 8}

    def test_metric_selection(self):
        assert FigurePanel(5, "a").metric == "high_elapsed"
        assert FigurePanel(7, "a").metric == "overall_elapsed"

    def test_iteration_scale_selection(self):
        assert FigurePanel(5, "a").iters_high < FigurePanel(6, "a").iters_high
        assert FigurePanel(7, "b").iters_high == FigurePanel(5, "b").iters_high

    def test_thread_mixes(self):
        assert FigurePanel(5, "a").mix == (2, 8)
        assert FigurePanel(6, "b").mix == (5, 5)
        assert FigurePanel(8, "c").mix == (8, 2)

    def test_invalid_panel_rejected(self):
        with pytest.raises(ValueError):
            FigurePanel(4, "a")
        with pytest.raises(ValueError):
            FigurePanel(5, "d")

    def test_titles_mention_figure(self):
        assert "Figure 6(c)" in FigurePanel(6, "c").title


class TestPanelShape:
    """A scaled-down panel run reproducing the paper's headline shape."""

    @pytest.fixture(scope="class")
    def panel_result(self):
        panel = FigurePanel(5, "a")  # 2 high + 8 low: strongest effect
        return run_panel(
            panel, repetitions=2, write_ratios=(0, 60),
            seed=23,
        )

    def test_modified_beats_unmodified_on_high_priority(self, panel_result):
        """Figures 5-6 (a)(b): 'our hybrid implementation improves
        throughput for high-priority threads'."""
        assert panel_result.mean_speedup("high_elapsed") > 1.0

    def test_unmodified_baseline_normalizes_to_one(self, panel_result):
        assert panel_result.series("unmodified")[0] == pytest.approx(1.0)

    def test_overall_time_overhead(self, panel_result):
        """Figures 7-8: 'the overall elapsed time for the modified VM must
        always be longer than for the unmodified VM'."""
        mod = panel_result.series("rollback", "overall_elapsed")
        unmod = panel_result.series("unmodified", "overall_elapsed")
        assert sum(mod) > sum(unmod) * 0.98  # allow tiny seed noise

    def test_render_does_not_crash(self, panel_result):
        from repro.bench.report import render_panel

        text = render_panel(panel_result)
        assert "MODIFIED" in text and "UNMODIFIED" in text
        assert "Figure 5(a)" in text
