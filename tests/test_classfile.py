"""Unit tests for the class model and bytecode verifier."""

import pytest

from repro.errors import VerifyError
from repro.vm import bytecode as bc
from repro.vm.bytecode import Instruction
from repro.vm.classfile import (
    ClassDef,
    ExceptionTableEntry,
    FieldDef,
    MethodDef,
    ROLLBACK_TYPE,
    THROWABLE,
)


def method(code, *, name="m", argc=0, max_locals=None, exc_table=()):
    m = MethodDef(
        name=name,
        argc=argc,
        max_locals=max_locals if max_locals is not None else argc,
        code=code,
        exc_table=list(exc_table),
    )
    m.class_name = "C"
    return m


def ret():
    return Instruction(bc.RETURN, 0)


class TestFieldDef:
    def test_default_values(self):
        assert FieldDef("x", "int").default() == 0
        assert FieldDef("y", "ref").default() is not None

    def test_frozen(self):
        f = FieldDef("x")
        with pytest.raises(AttributeError):
            f.name = "y"


class TestExceptionTableEntry:
    def test_covers_half_open(self):
        e = ExceptionTableEntry(2, 5, 9)
        assert not e.covers(1)
        assert e.covers(2) and e.covers(4)
        assert not e.covers(5)

    def test_shifted(self):
        e = ExceptionTableEntry(2, 5, 9, THROWABLE)
        s = e.shifted(at=3, by=2)
        assert (s.start, s.end, s.handler) == (2, 7, 11)
        assert s.type == THROWABLE

    def test_shifted_before_insertion_point(self):
        e = ExceptionTableEntry(2, 5, 9)
        s = e.shifted(at=100, by=2)
        assert (s.start, s.end, s.handler) == (2, 5, 9)


class TestVerifier:
    def test_valid_minimal_method(self):
        method([ret()]).verify()

    def test_empty_body_rejected(self):
        with pytest.raises(VerifyError, match="empty"):
            method([]).verify()

    def test_fall_off_end_rejected(self):
        with pytest.raises(VerifyError, match="fall off"):
            method([Instruction(bc.CONST, 1)]).verify()

    def test_goto_as_terminator_allowed(self):
        method([Instruction(bc.GOTO, 0)]).verify()

    def test_athrow_as_terminator_allowed(self):
        method([Instruction(bc.CONST, 1), Instruction(bc.ATHROW)]).verify()

    def test_branch_out_of_range_rejected(self):
        with pytest.raises(VerifyError, match="branch target"):
            method([Instruction(bc.GOTO, 5), ret()]).verify()

    def test_negative_branch_rejected(self):
        with pytest.raises(VerifyError, match="branch target"):
            method([Instruction(bc.IF, -1), ret()]).verify()

    def test_local_index_out_of_range_rejected(self):
        with pytest.raises(VerifyError, match="local index"):
            method([Instruction(bc.LOAD, 3), ret()], max_locals=2).verify()

    def test_max_locals_below_argc_rejected(self):
        m = method([ret()], argc=2, max_locals=1)
        with pytest.raises(VerifyError, match="max_locals"):
            m.verify()

    def test_unmatched_monitorenter_rejected(self):
        code = [
            Instruction(bc.CONST, 1),
            Instruction(bc.MONITORENTER, "s1"),
            ret(),
        ]
        with pytest.raises(VerifyError, match="no exit"):
            method(code).verify()

    def test_monitorenter_without_sync_id_rejected(self):
        code = [
            Instruction(bc.CONST, 1),
            Instruction(bc.MONITORENTER),
            Instruction(bc.CONST, 1),
            Instruction(bc.MONITOREXIT),
            ret(),
        ]
        with pytest.raises(VerifyError, match="sync id"):
            method(code).verify()

    def test_bad_exception_range_rejected(self):
        m = method([ret()], exc_table=[ExceptionTableEntry(0, 5, 0)])
        with pytest.raises(VerifyError, match="exception range"):
            m.verify()

    def test_bad_handler_pc_rejected(self):
        m = method(
            [Instruction(bc.CONST, 1), ret()],
            exc_table=[ExceptionTableEntry(0, 1, 7)],
        )
        with pytest.raises(VerifyError, match="handler pc"):
            m.verify()

    def test_rollback_handler_resume_pc_checked(self):
        code = [Instruction(bc.ROLLBACK_HANDLER, 0, 99)]
        with pytest.raises(VerifyError, match="resume pc"):
            method(code).verify()


class TestMethodCopy:
    def test_copy_is_deep_for_instructions(self):
        m = method([Instruction(bc.CONST, 1), ret()])
        c = m.copy()
        c.code[0].a = 999
        assert m.code[0].a == 1

    def test_copy_preserves_flags(self):
        m = method([ret()], argc=0)
        m.synchronized = True
        m.force_inline = True
        m.rollback_scopes["s"] = "scope"
        c = m.copy()
        assert c.synchronized and c.force_inline
        assert c.rollback_scopes == {"s": "scope"}
        c.rollback_scopes["t"] = "other"
        assert "t" not in m.rollback_scopes


class TestClassDef:
    def test_duplicate_field_rejected(self):
        c = ClassDef("C", fields=[FieldDef("x")])
        with pytest.raises(VerifyError, match="duplicate field"):
            c.add_field(FieldDef("x"))

    def test_duplicate_method_rejected(self):
        c = ClassDef("C", methods=[method([ret()])])
        with pytest.raises(VerifyError, match="duplicate method"):
            c.add_method(method([ret()]))

    def test_illegal_name_rejected(self):
        with pytest.raises(VerifyError):
            ClassDef("<bad>")
        with pytest.raises(VerifyError):
            ClassDef("")

    def test_field_lookup(self):
        c = ClassDef("C", fields=[FieldDef("x")])
        assert c.field("x").name == "x"
        with pytest.raises(VerifyError, match="no field"):
            c.field("y")

    def test_method_lookup(self):
        c = ClassDef("C", methods=[method([ret()])])
        assert c.method("m").name == "m"
        with pytest.raises(VerifyError, match="no method"):
            c.method("nope")

    def test_static_vs_instance_partition(self):
        c = ClassDef("C", fields=[
            FieldDef("a", is_static=True), FieldDef("b"),
        ])
        assert [f.name for f in c.static_fields()] == ["a"]
        assert [f.name for f in c.instance_fields()] == ["b"]

    def test_copy_independent(self):
        c = ClassDef("C", methods=[method([Instruction(bc.CONST, 5), ret()])])
        c2 = c.copy()
        c2.method("m").code[0].a = 6
        assert c.method("m").code[0].a == 5

    def test_add_method_sets_class_name(self):
        c = ClassDef("Xyz")
        m = method([ret()])
        c.add_method(m)
        assert m.class_name == "Xyz"
        assert m.qualified_name() == "Xyz.m"


class TestRollbackTypeSentinel:
    def test_rollback_type_is_not_a_legal_class_name(self):
        with pytest.raises(VerifyError):
            ClassDef(ROLLBACK_TYPE)
