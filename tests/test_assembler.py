"""Unit tests for the structured assembler."""

import pytest

from repro.errors import VerifyError
from repro.vm import bytecode as bc
from repro.vm.assembler import Asm
from repro.vm.classfile import ROLLBACK_TYPE


def ops(method):
    return [ins.op for ins in method.code]


class TestBasics:
    def test_simple_sequence(self):
        a = Asm("m")
        a.const(1).const(2).add().pop().ret()
        m = a.build()
        assert ops(m) == [bc.CONST, bc.CONST, bc.ADD, bc.POP, bc.RETURN]

    def test_locals_allocation(self):
        a = Asm("m", argc=2)
        x = a.local()
        y = a.local()
        assert (x, y) == (2, 3)
        a.ret()
        assert a.build().max_locals == 4

    def test_arg_accessor_bounds(self):
        a = Asm("m", argc=1)
        assert a.arg(0) == 0
        with pytest.raises(VerifyError):
            a.arg(1)

    def test_build_twice_rejected(self):
        a = Asm("m")
        a.ret()
        a.build()
        with pytest.raises(VerifyError, match="twice"):
            a.build()

    def test_returns_value_flag(self):
        a = Asm("m", returns_value=True)
        a.const(7).ret()
        assert a.build().code[-1].a == 1


class TestLabels:
    def test_forward_and_backward_resolution(self):
        a = Asm("m")
        top = a.label("top")
        end = a.label("end")
        a.place(top)
        a.const(1).if_(end)
        a.goto(top)
        a.place(end)
        a.ret()
        m = a.build()
        assert m.code[1].a == 3  # if -> end (the ret)
        assert m.code[2].a == 0  # goto -> top

    def test_unplaced_label_rejected(self):
        a = Asm("m")
        a.goto(a.label("nowhere"))
        a.ret()
        with pytest.raises(VerifyError, match="unplaced"):
            a.build()

    def test_double_placement_rejected(self):
        a = Asm("m")
        lab = a.label()
        a.place(lab)
        with pytest.raises(VerifyError, match="twice"):
            a.place(lab)


class TestSyncBlock:
    def test_javac_shape(self):
        """sync() must emit the exact javac pattern: cache ref in a temp,
        enter, body, exit, goto end, and a catch-all release handler."""
        a = Asm("m")
        a.const(0)  # stand-in monitor ref for shape inspection
        with a.sync():
            a.const(42).pop()
        a.ret()
        m = a.build()
        assert ops(m) == [
            bc.CONST,            # monitor ref
            bc.STORE,            # cache in tmp
            bc.LOAD,
            bc.MONITORENTER,
            bc.CONST, bc.POP,    # body
            bc.LOAD,
            bc.MONITOREXIT,
            bc.GOTO,
            bc.LOAD,             # handler: reload tmp
            bc.MONITOREXIT,
            bc.ATHROW,
            bc.RETURN,
        ]
        # catch-all entry covering exactly the body
        [entry] = m.exc_table
        assert entry.type is None
        assert entry.start == 4 and entry.end == 6
        assert entry.handler == 9

    def test_sync_ids_unique_and_paired(self):
        a = Asm("m")
        a.const(0)
        with a.sync() as outer_id:
            a.const(0)
            with a.sync() as inner_id:
                a.pop()  # discard something? no—body must balance; push first
        a.ret()
        m = a.build()
        assert outer_id != inner_id
        enters = [ins.a for ins in m.code if ins.op == bc.MONITORENTER]
        exits = [ins.a for ins in m.code if ins.op == bc.MONITOREXIT]
        assert sorted(set(enters)) == sorted({outer_id, inner_id})
        # each sync id: 1 enter, 2 exits (normal + exceptional release)
        for sid in (outer_id, inner_id):
            assert enters.count(sid) == 1
            assert exits.count(sid) == 2

    def test_exception_entries_innermost_first(self):
        a = Asm("m")
        a.const(0)
        with a.sync():
            a.const(0)
            with a.sync():
                a.nop() if hasattr(a, "nop") else a.const(0).pop()
        a.ret()
        m = a.build()
        inner, outer = m.exc_table
        assert inner.start >= outer.start


class TestControlHelpers:
    def test_while_loop_backedge(self):
        a = Asm("m")
        i = a.local()
        a.const(0).store(i)
        a.while_(
            lambda: a.load(i).const(3).lt(),
            lambda: a.iinc(i, 1),
        )
        a.ret()
        m = a.build()
        gotos = [ins for ins in m.code if ins.op == bc.GOTO]
        assert any(g.a <= m.code.index(g) for g in gotos)  # a back-edge

    def test_for_range_evaluates_count_once(self):
        a = Asm("m")
        i = a.local()
        a.for_range(i, lambda: a.const(5), lambda: a.const(0).pop())
        a.ret()
        m = a.build()
        consts = [ins for ins in m.code if ins.op == bc.CONST and ins.a == 5]
        assert len(consts) == 1

    def test_if_then_without_else(self):
        a = Asm("m")
        a.if_then(lambda: a.const(1), lambda: a.const(2).pop())
        a.ret()
        m = a.build()
        assert bc.IFNOT in ops(m)
        assert ops(m).count(bc.GOTO) == 0

    def test_if_then_else_has_goto_over_else(self):
        a = Asm("m")
        a.if_then(
            lambda: a.const(1),
            lambda: a.const(2).pop(),
            lambda: a.const(3).pop(),
        )
        a.ret()
        assert ops(a.build()).count(bc.GOTO) == 1


class TestTryCatch:
    def test_typed_catch_entry(self):
        a = Asm("m")
        a.try_(
            body=lambda: a.const(1).pop(),
            catches=[("ArithmeticException", lambda: a.pop())],
        )
        a.ret()
        m = a.build()
        [entry] = m.exc_table
        assert entry.type == "ArithmeticException"

    def test_finally_adds_catch_all_and_duplicates_body(self):
        a = Asm("m")
        a.try_(
            body=lambda: a.const(1).pop(),
            catches=[("E", lambda: a.pop())],
            finally_=lambda: a.const(99).pop(),
        )
        a.ret()
        m = a.build()
        types = [e.type for e in m.exc_table]
        assert types == ["E", None]
        # finally body appears 3x: after try, after catch, in rethrow path
        assert sum(
            1 for ins in m.code if ins.op == bc.CONST and ins.a == 99
        ) == 3

    def test_rollback_type_never_emitted_by_user_code(self):
        a = Asm("m")
        a.const(0)
        with a.sync():
            a.try_(lambda: a.const(0).pop(), [("E", lambda: a.pop())])
        a.ret()
        assert all(e.type != ROLLBACK_TYPE for e in a.build().exc_table)
