"""Module-level task functions for fleet tests.

Fleet workers resolve tasks by ``module:qualname``, so test tasks must
live in an importable plain module — the worker subprocesses get this
directory appended to their PYTHONPATH.  Keep everything here pure and
dependency-free.
"""

from __future__ import annotations

import time


def double(item):
    return item * 2


def slow_double(item):
    """``(value, delay_s)`` -> value * 2, after sleeping ``delay_s``.

    The sleep holds a lease open long enough for worker-death tests to
    kill the process mid-task deterministically.
    """
    value, delay = item
    time.sleep(delay)
    return value * 2


def fail_on_negative(item):
    if item < 0:
        raise ValueError(f"task rejects negative input {item}")
    return item + 100


def task_key(item) -> str:
    from repro.bench.parallel import cache_key

    return cache_key("fleet-test-task", item)
