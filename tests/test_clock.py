"""Unit tests for virtual time and the cost model."""

import pytest

from repro.vm import bytecode as bc
from repro.vm.clock import CostModel, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0

    def test_advance_accumulates(self):
        c = VirtualClock()
        c.advance(10)
        c.advance(5)
        assert c.now == 15

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_advance_to_forward_only(self):
        c = VirtualClock()
        c.advance(100)
        c.advance_to(50)   # no-op: never backwards
        assert c.now == 100
        c.advance_to(200)
        assert c.now == 200

    def test_event_fingerprint(self):
        c = VirtualClock()
        c.advance(1)
        c.advance(0)
        assert c.events == 2


class TestCostModel:
    def test_defaults_ordering(self):
        """Sanity on the cost hierarchy the figures depend on."""
        cm = CostModel()
        assert cm.simple < cm.heap_access < cm.monitor_fast
        assert cm.barrier_fast < cm.barrier_slow
        assert cm.monitor_fast < cm.monitor_slow
        assert cm.rollback_base > cm.monitor_slow
        assert cm.quantum > cm.context_switch

    @pytest.mark.parametrize("op,field", [
        (bc.ADD, "simple"),
        (bc.LOAD, "simple"),
        (bc.GETFIELD, "heap_access"),
        (bc.PUTSTATIC, "heap_access"),
        (bc.ASTORE, "heap_access"),
        (bc.NEW, "allocation"),
        (bc.NEWARRAY, "allocation"),
        (bc.MONITORENTER, "monitor_fast"),
        (bc.MONITOREXIT, "monitor_fast"),
        (bc.INVOKE, "invoke"),
        (bc.NATIVE, "native"),
        (bc.WAIT, "thread_op"),
        (bc.NOTIFY, "thread_op"),
        (bc.SAVESTATE, "savestate_base"),
    ])
    def test_instruction_costs(self, op, field):
        cm = CostModel()
        assert cm.instruction_cost(op) == getattr(cm, field)

    @pytest.mark.parametrize("op", [
        bc.DEBUG, bc.NOP, bc.ROLLBACK_HANDLER, bc.RESTORESTATE,
    ])
    def test_free_instructions(self, op):
        assert CostModel().instruction_cost(op) == 0

    def test_scaled_preserves_quantum(self):
        cm = CostModel()
        doubled = cm.scaled(2.0)
        assert doubled.simple == 2 * cm.simple
        assert doubled.heap_access == 2 * cm.heap_access
        assert doubled.quantum == cm.quantum

    def test_scaled_rounds_not_truncates(self):
        cm = CostModel(simple=3)
        assert cm.scaled(0.5).simple == 2  # round(1.5) banker's = 2

    def test_frozen(self):
        with pytest.raises(Exception):
            CostModel().simple = 5


class TestCostTable:
    """The precomputed per-opcode table (built in ``__post_init__``)."""

    def test_table_matches_the_rule_set_for_every_opcode(self):
        cm = CostModel()
        assert len(cm._cost_table) == bc._MAX_OP
        for op in range(bc._MAX_OP):
            assert cm.instruction_cost(op) == cm._static_cost(op)

    def test_pinned_default_costs(self):
        """Absolute values: a silent cost change shifts every virtual
        clock in the repo, so pin the defaults explicitly."""
        table = CostModel()._cost_table
        expected = {
            bc.CONST: 1, bc.LOAD: 1, bc.ADD: 1, bc.GOTO: 1,
            bc.GETFIELD: 4, bc.ASTORE: 4, bc.ARRAYLEN: 4,
            bc.NEW: 20, bc.NEWARRAY: 20,
            bc.MONITORENTER: 15, bc.MONITOREXIT: 15,
            bc.INVOKE: 10, bc.NATIVE: 30,
            bc.WAIT: 30, bc.TIMED_WAIT: 30, bc.NOTIFY: 30,
            bc.NOTIFYALL: 30, bc.SLEEP: 30,
            bc.SAVESTATE: 4,
            bc.DEBUG: 0, bc.NOP: 0, bc.ROLLBACK_HANDLER: 0,
            bc.RESTORESTATE: 0,
        }
        for op, cost in expected.items():
            assert table[op] == cost, bc.mnemonic(op)

    def test_out_of_range_opcode_falls_back_to_simple(self):
        cm = CostModel()
        assert cm.instruction_cost(bc._MAX_OP + 7) == cm.simple
        assert cm.instruction_cost(-1) == cm.simple

    def test_replace_and_scaled_rebuild_the_table(self):
        import dataclasses

        cm = dataclasses.replace(CostModel(), heap_access=11)
        assert cm.instruction_cost(bc.GETFIELD) == 11
        assert CostModel().scaled(3.0).instruction_cost(bc.NEW) == 60

    def test_table_invisible_to_equality_and_hash(self):
        a, b = CostModel(), CostModel()
        assert a == b and hash(a) == hash(b)
        assert "_cost_table" not in {
            f.name for f in __import__("dataclasses").fields(CostModel)
        }
