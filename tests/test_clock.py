"""Unit tests for virtual time and the cost model."""

import pytest

from repro.vm import bytecode as bc
from repro.vm.clock import CostModel, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0

    def test_advance_accumulates(self):
        c = VirtualClock()
        c.advance(10)
        c.advance(5)
        assert c.now == 15

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_advance_to_forward_only(self):
        c = VirtualClock()
        c.advance(100)
        c.advance_to(50)   # no-op: never backwards
        assert c.now == 100
        c.advance_to(200)
        assert c.now == 200

    def test_event_fingerprint(self):
        c = VirtualClock()
        c.advance(1)
        c.advance(0)
        assert c.events == 2


class TestCostModel:
    def test_defaults_ordering(self):
        """Sanity on the cost hierarchy the figures depend on."""
        cm = CostModel()
        assert cm.simple < cm.heap_access < cm.monitor_fast
        assert cm.barrier_fast < cm.barrier_slow
        assert cm.monitor_fast < cm.monitor_slow
        assert cm.rollback_base > cm.monitor_slow
        assert cm.quantum > cm.context_switch

    @pytest.mark.parametrize("op,field", [
        (bc.ADD, "simple"),
        (bc.LOAD, "simple"),
        (bc.GETFIELD, "heap_access"),
        (bc.PUTSTATIC, "heap_access"),
        (bc.ASTORE, "heap_access"),
        (bc.NEW, "allocation"),
        (bc.NEWARRAY, "allocation"),
        (bc.MONITORENTER, "monitor_fast"),
        (bc.MONITOREXIT, "monitor_fast"),
        (bc.INVOKE, "invoke"),
        (bc.NATIVE, "native"),
        (bc.WAIT, "thread_op"),
        (bc.NOTIFY, "thread_op"),
        (bc.SAVESTATE, "savestate_base"),
    ])
    def test_instruction_costs(self, op, field):
        cm = CostModel()
        assert cm.instruction_cost(op) == getattr(cm, field)

    @pytest.mark.parametrize("op", [
        bc.DEBUG, bc.NOP, bc.ROLLBACK_HANDLER, bc.RESTORESTATE,
    ])
    def test_free_instructions(self, op):
        assert CostModel().instruction_cost(op) == 0

    def test_scaled_preserves_quantum(self):
        cm = CostModel()
        doubled = cm.scaled(2.0)
        assert doubled.simple == 2 * cm.simple
        assert doubled.heap_access == 2 * cm.heap_access
        assert doubled.quantum == cm.quantum

    def test_scaled_rounds_not_truncates(self):
        cm = CostModel(simple=3)
        assert cm.scaled(0.5).simple == 2  # round(1.5) banker's = 2

    def test_frozen(self):
        with pytest.raises(Exception):
            CostModel().simple = 5
