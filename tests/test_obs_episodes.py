"""Priority-inversion episode analyzer: detection over the span stream,
resolution classification, exact blocked-cycle attribution (zero
residue), the byte-stable ``repro.obs.episodes/1`` report, and the
per-policy comparison table — the figure the paper never had."""

from __future__ import annotations

import json

import pytest

from repro.obs.capture import ObsSpec, capture_run
from repro.obs.episodes import (
    EPISODES_FORMAT,
    EpisodeSink,
    _spans_from_jsonl,
    build_report,
    detect_episodes,
    policy_table,
    render_report,
    report_bytes,
    thread_tier,
)

MODES = ("unmodified", "rollback", "inheritance")


@pytest.fixture(scope="module")
def reports():
    return {
        mode: build_report(
            capture_run(ObsSpec(scenario="medium-inversion", mode=mode))
        )
        for mode in MODES
    }


# ------------------------------------------------------ pinned goldens
def test_paper_shape_inversion_cycles_pinned(reports):
    """ISSUE acceptance: unmodified >> inheritance >> rollback.

    These totals are pure functions of (scenario, mode, seed); any
    drift means the scheduler, the cost model or the revocation
    promptness changed and must be re-derived deliberately.
    """
    assert reports["unmodified"]["totals"] == {
        "episodes": 1, "inversion_cycles": 19491,
    }
    assert reports["rollback"]["totals"] == {
        "episodes": 1, "inversion_cycles": 353,
    }
    assert reports["inheritance"]["totals"] == {
        "episodes": 1, "inversion_cycles": 4332,
    }


def test_resolution_classification_matches_policy(reports):
    assert list(reports["unmodified"]["by_resolution"]) == [
        "natural-release"
    ]
    assert list(reports["rollback"]["by_resolution"]) == ["revocation"]
    assert list(reports["inheritance"]["by_resolution"]) == [
        "inheritance"
    ]


def test_policy_table_pinned(reports):
    table = policy_table(reports)
    lines = table.splitlines()
    assert "vs-unmodified" in lines[0]
    assert "unmodified" in lines[1] and "1.0000" in lines[1]
    assert "rollback" in lines[2] and "0.0181" in lines[2]
    assert "inheritance" in lines[3] and "0.2223" in lines[3]
    assert "revocation=1" in lines[2]


def test_episode_record_shape(reports):
    (episode,) = reports["rollback"]["episodes"]
    assert episode["index"] == 1
    assert episode["thread"] == "high"
    assert episode["priority"] > episode["holder_priority"]
    assert episode["holder"] == "low"
    assert episode["cycles"] == episode["end"] - episode["start"] == 353
    assert episode["section_outcome"] == "rollback"
    assert episode["blocked_outcome"] == "granted"


# ------------------------------------------ exact cycle reconciliation
def test_reconciliation_zero_residue_every_mode(reports):
    """Blocked-span cycles == thread metrics == profiler attribution,
    with zero residue — the ISSUE's exact-attribution acceptance."""
    for mode in MODES:
        rec = reports[mode]["reconciliation"]
        assert rec["residue"] == 0, mode
        assert rec["unresolved_cycles"] == 0, mode
        assert "high" in rec["threads"], mode
        row = rec["threads"]["high"]
        assert row["spans"] == row["metrics"] == row["profiler"]


# ----------------------------------------------------- report encoding
def test_report_bytes_canonical(reports):
    blob = report_bytes(reports["rollback"])
    assert blob.endswith(b"\n")
    doc = json.loads(blob)
    assert doc["format"] == EPISODES_FORMAT
    assert blob == report_bytes(reports["rollback"])  # stable re-encode


def test_report_byte_identical_across_interpreters():
    fast = build_report(capture_run(
        ObsSpec(scenario="medium-inversion", interp="fast")
    ))
    ref = build_report(capture_run(
        ObsSpec(scenario="medium-inversion", interp="reference")
    ))
    assert report_bytes(fast) == report_bytes(ref)


def test_render_report_mentions_everything(reports):
    text = render_report(reports["rollback"])
    assert "episodes: 1" in text
    assert "revocation" in text
    assert "reconciliation residue: 0" in text
    assert "high(10)" in text and "low(1)" in text


# --------------------------------------------------- online == offline
def test_online_sink_matches_offline_pass():
    """The streaming sink folds the same event stream the offline pass
    reads, so both must be attached before the scenario installs (the
    spawn events carry the base priorities)."""
    from repro.obs.scenarios import get_scenario
    from repro.obs.spans import SpanBuilder
    from repro.vm.vmcore import JVM, VMOptions

    spec = ObsSpec(scenario="medium-inversion")
    scenario = get_scenario(spec.scenario)
    vm = JVM(VMOptions(
        mode=spec.mode, seed=spec.seed, trace=True, **scenario.options
    ))
    builder = SpanBuilder()
    sink = EpisodeSink()
    vm.tracer.add_sink(builder)
    vm.tracer.add_sink(sink)
    scenario.install(vm, spec.seed, spec.write_pct)
    vm.run()
    offline = detect_episodes(builder.finish(vm.clock.now))
    online = sink.finish(vm.clock.now)
    assert online == offline
    assert len(online) == 1


# --------------------------------------------------- tier attribution
def test_thread_tier_naming():
    assert thread_tier("gold-w0") == "gold"
    assert thread_tier("t07-gen-3") == "t07"
    assert thread_tier("high") == "high"


def test_server_storm_tier_attribution():
    """The server-plane capture attributes episodes to SLA tiers."""
    artifact = capture_run(ObsSpec(scenario="server-storm"))
    report = build_report(artifact)
    assert report["totals"]["episodes"] >= 1
    assert set(report["by_tier"]) == {"gold"}
    assert set(report["by_site"]) == {"<Server#73>"}
    assert sum(
        agg["episodes"] for agg in report["by_resolution"].values()
    ) == report["totals"]["episodes"]
    # the capture summary carries the same counts
    assert artifact["summary"]["episodes"] == (
        report["totals"]["episodes"]
    )
    assert artifact["summary"]["inversion_cycles"] == (
        report["totals"]["inversion_cycles"]
    )


def test_spans_roundtrip_through_jsonl(reports):
    """Parsing the artifact JSONL back yields the same episodes."""
    artifact = capture_run(ObsSpec(scenario="medium-inversion"))
    direct = detect_episodes(_spans_from_jsonl(artifact["spans_jsonl"]))
    assert direct == reports["rollback"]["episodes"]
