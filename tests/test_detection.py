"""Detection tests (paper §4 and §1): at-acquisition vs periodic
background detection, request subsumption, the livelock guard, and
revocation of off-CPU holders."""

from repro import Asm

from conftest import build_class, make_vm


def scenario(vm, *, low_iters=2_000, high_delay=4_000, high_iters=50):
    """Deterministic inversion: low enters at ~0, high arrives mid-section."""
    run = Asm("run", argc=2)  # (iters, delay)
    run.load(1).sleep()
    run.getstatic("T", "lock")
    with run.sync():
        i = run.local()
        run.for_range(i, lambda: run.load(0), lambda: (
            run.getstatic("T", "counter"), run.const(1), run.add(),
            run.putstatic("T", "counter"),
        ))
    run.ret()
    cls = build_class("T", ["lock:ref", "counter:int"], [run])
    vm.load(cls)
    vm.set_static("T", "lock", vm.new_object("T"))
    vm.spawn("T", "run", args=[low_iters, 1], priority=1, name="low")
    vm.spawn("T", "run", args=[high_iters, high_delay], priority=10,
             name="high")
    vm.run()
    return vm


class TestAtAcquireDetection:
    def test_detects_on_contended_acquire(self):
        vm = scenario(make_vm("rollback", detection="acquire"))
        s = vm.metrics()["support"]
        assert s["inversions_detected"] == 1
        assert s["revocations_completed"] == 1

    def test_no_detection_without_priority_gap(self):
        """Equal priorities: never an inversion, never a revocation."""
        run = Asm("run", argc=2)
        run.load(1).sleep()
        run.getstatic("T", "lock")
        with run.sync():
            i = run.local()
            run.for_range(i, lambda: run.load(0), lambda: (
                run.getstatic("T", "counter"), run.const(1), run.add(),
                run.putstatic("T", "counter"),
            ))
        run.ret()
        cls = build_class("T", ["lock:ref", "counter:int"], [run])
        vm = make_vm("rollback")
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        vm.spawn("T", "run", args=[2_000, 1], priority=5, name="a")
        vm.spawn("T", "run", args=[50, 4_000], priority=5, name="b")
        vm.run()
        s = vm.metrics()["support"]
        assert s["inversions_detected"] == 0
        assert s["revocations_completed"] == 0

    def test_low_contender_blocks_normally(self):
        """A LOW-priority thread arriving at a HIGH-priority holder's
        section must block, not revoke."""
        run = Asm("run", argc=2)
        run.load(1).sleep()
        run.getstatic("T", "lock")
        with run.sync():
            i = run.local()
            run.for_range(i, lambda: run.load(0), lambda: (
                run.getstatic("T", "counter"), run.const(1), run.add(),
                run.putstatic("T", "counter"),
            ))
        run.ret()
        cls = build_class("T", ["lock:ref", "counter:int"], [run])
        vm = make_vm("rollback")
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        vm.spawn("T", "run", args=[2_000, 1], priority=10, name="high")
        vm.spawn("T", "run", args=[50, 4_000], priority=1, name="low")
        vm.run()
        assert vm.metrics()["support"]["revocations_completed"] == 0
        assert vm.get_static("T", "counter") == 2_050


class TestPeriodicDetection:
    def test_periodic_mode_detects_without_acquire_hook(self):
        vm = scenario(
            make_vm("rollback", detection="periodic",
                    periodic_interval=2_000)
        )
        s = vm.metrics()["support"]
        assert s["revocations_completed"] >= 1
        assert vm.get_static("T", "counter") == 2_050

    def test_periodic_interval_limits_scan_frequency(self):
        """With an interval longer than the whole run, the background scan
        never fires and no inversion is resolved."""
        vm = scenario(
            make_vm("rollback", detection="periodic",
                    periodic_interval=10_000_000)
        )
        assert vm.metrics()["support"]["revocations_completed"] == 0
        assert vm.get_static("T", "counter") == 2_050  # still correct

    def test_both_mode(self):
        vm = scenario(make_vm("rollback", detection="both"))
        assert vm.metrics()["support"]["revocations_completed"] >= 1


class TestRequestSubsumption:
    def test_outer_target_replaces_inner(self):
        """Nested sections on distinct monitors, contenders for both: the
        pending request must end up naming the outermost target (rolling
        back outer subsumes inner)."""
        low = Asm("low", argc=0)
        low.getstatic("T", "outer")
        with low.sync():
            low.getstatic("T", "inner")
            with low.sync():
                i = low.local()
                low.for_range(i, lambda: low.const(3_000), lambda: (
                    low.getstatic("T", "counter"), low.const(1), low.add(),
                    low.putstatic("T", "counter"),
                ))
        low.ret()

        grab = Asm("grab", argc=2)  # (which, delay): 0=inner, 1=outer
        grab.load(1).sleep()
        grab.if_then(
            lambda: grab.load(0),
            lambda: grab.getstatic("T", "outer"),
            lambda: grab.getstatic("T", "inner"),
        )
        with grab.sync():
            grab.const(0).pop()
        grab.ret()

        cls = build_class(
            "T", ["outer:ref", "inner:ref", "counter:int"], [low, grab]
        )
        vm = make_vm("rollback")
        vm.load(cls)
        vm.set_static("T", "outer", vm.new_object("T"))
        vm.set_static("T", "inner", vm.new_object("T"))
        vm.spawn("T", "low", priority=1, name="low")
        # inner contender arrives first, then the outer contender, both
        # before the low thread's next yield point can honour the first
        vm.spawn("T", "grab", args=[0, 2_000], priority=8, name="mid")
        vm.spawn("T", "grab", args=[1, 2_200], priority=10, name="high")
        vm.run()
        assert vm.get_static("T", "counter") == 3_000
        assert vm.metrics()["support"]["revocations_completed"] >= 1
        # the completed rollback's target was the OUTER section: after it,
        # both monitors were released before re-execution
        rollback_releases = vm.tracer.of_kind("rollback_release")
        assert len(rollback_releases) >= 2  # inner + outer in one unwind


class TestLivelockGuard:
    def test_grace_after_repeated_revocations(self):
        """With threshold 1, the second inversion within the grace window
        is denied and the contender blocks classically."""
        run = Asm("run", argc=2)
        run.load(1).sleep()
        run.getstatic("T", "lock")
        with run.sync():
            i = run.local()
            run.for_range(i, lambda: run.load(0), lambda: (
                run.getstatic("T", "counter"), run.const(1), run.add(),
                run.putstatic("T", "counter"),
            ))
        run.ret()
        cls = build_class("T", ["lock:ref", "counter:int"], [run])
        vm = make_vm(
            "rollback", livelock_threshold=1, livelock_grace=10_000_000
        )
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        vm.spawn("T", "run", args=[4_000, 1], priority=1, name="low")
        vm.spawn("T", "run", args=[50, 4_000], priority=10, name="h1")
        vm.spawn("T", "run", args=[50, 30_000], priority=10, name="h2")
        vm.run()
        s = vm.metrics()["support"]
        assert s["revocations_completed"] == 1
        assert s["revocations_denied_grace"] >= 1
        assert vm.get_static("T", "counter") == 4_000 + 100

    def test_counter_resets_after_commit(self):
        """A committed section clears consecutive_revocations."""
        vm = scenario(make_vm("rollback"))
        low = vm.thread_named("low")
        assert low.consecutive_revocations == 0
        assert low.revocations >= 1


class TestOffCpuRevocation:
    def test_sleeping_holder_is_woken_to_roll_back(self):
        """A holder sleeping INSIDE its section cannot reach a yield
        point; detection must wake it so the rollback proceeds."""
        low = Asm("low", argc=0)
        low.getstatic("T", "lock")
        with low.sync():
            low.const(1).putstatic("T", "counter")
            low.const(200_000).sleep()  # holds the lock while sleeping
            low.const(2).putstatic("T", "counter")
        low.ret()

        high = Asm("high", argc=0)
        high.const(5_000).sleep()
        high.getstatic("T", "lock")
        with high.sync():
            high.time().putstatic("T", "high_at")
        high.ret()

        cls = build_class(
            "T", ["lock:ref", "counter:int", "high_at:int"], [low, high]
        )
        vm = make_vm("rollback")
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        vm.spawn("T", "low", priority=1, name="low")
        vm.spawn("T", "high", priority=10, name="high")
        vm.run()
        assert vm.metrics()["support"]["revocations_completed"] >= 1
        # the high thread got the lock long before the 200k sleep ended
        assert vm.get_static("T", "high_at") < 100_000
        assert vm.get_static("T", "counter") == 2  # low re-ran eventually
