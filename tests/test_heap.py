"""Unit tests for the guest heap."""

import pytest

from repro.errors import GuestRuntimeError, LinkError
from repro.vm.classfile import ClassDef, FieldDef
from repro.vm.heap import Heap, VMArray, VMObject, location_of, require_ref
from repro.vm.values import NULL


@pytest.fixture
def heap():
    return Heap()


@pytest.fixture
def point_class():
    return ClassDef("Point", fields=[
        FieldDef("x", "int"),
        FieldDef("y", "int"),
        FieldDef("origin", "ref", is_static=True),
        FieldDef("count", "int", is_static=True),
    ])


class TestObjects:
    def test_allocation_initializes_defaults(self, heap, point_class):
        obj = heap.allocate(point_class)
        assert obj.get("x") == 0 and obj.get("y") == 0

    def test_put_returns_old_value(self, heap, point_class):
        obj = heap.allocate(point_class)
        assert obj.put("x", 5) == 0
        assert obj.put("x", 7) == 5
        assert obj.get("x") == 7

    def test_statics_not_instance_fields(self, heap, point_class):
        obj = heap.allocate(point_class)
        with pytest.raises(LinkError):
            obj.get("count")

    def test_unknown_field_raises(self, heap, point_class):
        obj = heap.allocate(point_class)
        with pytest.raises(LinkError):
            obj.put("z", 1)

    def test_oids_unique_and_monotonic(self, heap, point_class):
        oids = [heap.allocate(point_class).oid for _ in range(10)]
        assert len(set(oids)) == 10
        assert oids == sorted(oids)

    def test_allocation_counter(self, heap, point_class):
        heap.allocate(point_class)
        heap.allocate_array(3)
        assert heap.objects_allocated == 1
        assert heap.arrays_allocated == 1


class TestArrays:
    def test_fill_and_length(self, heap):
        arr = heap.allocate_array(4, fill=9)
        assert len(arr) == 4
        assert arr.snapshot() == [9, 9, 9, 9]

    def test_put_get_roundtrip(self, heap):
        arr = heap.allocate_array(3)
        assert arr.put(1, 42) == 0
        assert arr.get(1) == 42

    @pytest.mark.parametrize("index", [-1, 3, 100])
    def test_bounds_checked(self, heap, index):
        arr = heap.allocate_array(3)
        with pytest.raises(GuestRuntimeError) as exc_info:
            arr.get(index)
        assert exc_info.value.guest_class == "ArrayIndexOutOfBoundsException"
        with pytest.raises(GuestRuntimeError):
            arr.put(index, 1)

    def test_negative_length_rejected(self):
        with pytest.raises(GuestRuntimeError) as exc_info:
            VMArray(1, -1)
        assert exc_info.value.guest_class == "NegativeArraySizeException"

    def test_zero_length_allowed(self, heap):
        assert len(heap.allocate_array(0)) == 0


class TestStatics:
    def test_register_class_installs_statics(self, heap, point_class):
        heap.register_class(point_class)
        assert heap.get_static(("Point", "count")) == 0
        assert heap.get_static(("Point", "origin")) is NULL

    def test_put_static_returns_old(self, heap, point_class):
        heap.register_class(point_class)
        assert heap.put_static(("Point", "count"), 3) == 0
        assert heap.put_static(("Point", "count"), 4) == 3

    def test_unknown_static_raises(self, heap):
        with pytest.raises(LinkError):
            heap.get_static(("Nope", "x"))
        with pytest.raises(LinkError):
            heap.put_static(("Nope", "x"), 1)

    def test_static_def_lookup(self, heap, point_class):
        heap.register_class(point_class)
        assert heap.static_def("Point", "count").kind == "int"
        with pytest.raises(LinkError):
            heap.static_def("Point", "x")  # instance field, not static

    def test_class_object_created(self, heap, point_class):
        cls_obj = heap.register_class(point_class)
        assert heap.class_object("Point") is cls_obj
        assert cls_obj.classdef.name == "Class"

    def test_class_object_missing_raises(self, heap):
        with pytest.raises(LinkError):
            heap.class_object("Nope")

    def test_iter_statics(self, heap, point_class):
        heap.register_class(point_class)
        keys = {k for k, _ in heap.iter_statics()}
        assert ("Point", "count") in keys and ("Point", "origin") in keys


class TestLocations:
    def test_location_kinds_disjoint(self, heap, point_class):
        obj = heap.allocate(point_class)
        arr = heap.allocate_array(2)
        locs = {
            location_of(obj, "x"),
            location_of(arr, 0),
            location_of(("Point", "count"), "count"),
        }
        assert len(locs) == 3

    def test_same_slot_same_location(self, heap, point_class):
        obj = heap.allocate(point_class)
        assert location_of(obj, "x") == location_of(obj, "x")

    def test_different_objects_differ(self, heap, point_class):
        a, b = heap.allocate(point_class), heap.allocate(point_class)
        assert location_of(a, "x") != location_of(b, "x")


class TestRequireRef:
    def test_null_raises_npe(self):
        with pytest.raises(GuestRuntimeError) as exc_info:
            require_ref(NULL)
        assert exc_info.value.guest_class == "NullPointerException"

    def test_scalar_raises(self):
        with pytest.raises(GuestRuntimeError):
            require_ref(42)

    def test_valid_ref_passes_through(self, heap, point_class):
        obj = heap.allocate(point_class)
        assert require_ref(obj) is obj
