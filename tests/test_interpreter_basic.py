"""Interpreter tests: arithmetic, control flow, heap access, calls.

All run a single guest thread and assert on static fields ("out" by
convention) after the VM quiesces.
"""

import pytest

from repro import Asm, UncaughtGuestException
from repro.vm.threads import ThreadState

from conftest import build_class, make_vm, run_single


def out_of(vm, name="out"):
    return vm.get_static("T", name)


class TestArithmetic:
    @pytest.mark.parametrize("emitter,expected", [
        (lambda a: a.const(2).const(3).add(), 5),
        (lambda a: a.const(2).const(3).sub(), -1),
        (lambda a: a.const(4).const(3).mul(), 12),
        (lambda a: a.const(7).const(2).div(), 3),
        (lambda a: a.const(-7).const(2).div(), -3),   # Java: toward zero
        (lambda a: a.const(7).const(-2).div(), -3),
        (lambda a: a.const(-7).const(-2).div(), 3),
        (lambda a: a.const(7).const(3).mod(), 1),
        (lambda a: a.const(-7).const(3).mod(), -1),   # sign of dividend
        (lambda a: a.const(7).const(-3).mod(), 1),
        (lambda a: a.const(5).neg(), -5),
        (lambda a: a.const(0b1100).const(0b1010).and_(), 0b1000),
        (lambda a: a.const(0b1100).const(0b1010).or_(), 0b1110),
        (lambda a: a.const(0b1100).const(0b1010).xor(), 0b0110),
        (lambda a: a.const(3).const(2).shl(), 12),
        (lambda a: a.const(12).const(2).shr(), 3),
        (lambda a: a.const(-8).const(1).shr(), -4),   # arithmetic shift
        (lambda a: a.const(0).not_(), 1),
        (lambda a: a.const(5).not_(), 0),
    ])
    def test_int_ops(self, emitter, expected):
        vm = run_single(
            lambda a: (emitter(a), a.putstatic("T", "out")),
            fields=["out:int"],
        )
        assert out_of(vm) == expected

    def test_float_arithmetic(self):
        vm = run_single(
            lambda a: (
                a.const(1.5).const(0.25).add(), a.putstatic("T", "out"),
            ),
            fields=["out:float"],
        )
        assert out_of(vm) == pytest.approx(1.75)

    def test_float_division_by_zero_gives_infinity(self):
        vm = run_single(
            lambda a: (
                a.const(1.0).const(0.0).div(), a.putstatic("T", "out"),
            ),
            fields=["out:float"],
        )
        assert out_of(vm) == float("inf")

    @pytest.mark.parametrize("emitter,expected", [
        (lambda a: a.const(2).const(3).lt(), 1),
        (lambda a: a.const(3).const(3).lt(), 0),
        (lambda a: a.const(3).const(3).le(), 1),
        (lambda a: a.const(3).const(2).gt(), 1),
        (lambda a: a.const(3).const(3).ge(), 1),
        (lambda a: a.const(3).const(3).eq(), 1),
        (lambda a: a.const(3).const(4).ne(), 1),
    ])
    def test_comparisons(self, emitter, expected):
        vm = run_single(
            lambda a: (emitter(a), a.putstatic("T", "out")),
            fields=["out:int"],
        )
        assert out_of(vm) == expected

    def test_reference_equality_is_identity(self):
        def emit(a: Asm):
            x = a.local()
            a.new("T").store(x)
            a.load(x).load(x).eq().putstatic("T", "same")
            a.load(x).new("T").eq().putstatic("T", "diff")

        vm = run_single(emit, fields=["same:int", "diff:int"])
        assert out_of(vm, "same") == 1
        assert out_of(vm, "diff") == 0


class TestStackAndLocals:
    def test_dup_pop_swap(self):
        vm = run_single(
            lambda a: (
                a.const(1).const(2).swap().sub(),  # 2 - 1
                a.putstatic("T", "out"),
            ),
            fields=["out:int"],
        )
        assert out_of(vm) == 1

    def test_dup(self):
        vm = run_single(
            lambda a: (a.const(3).dup().mul(), a.putstatic("T", "out")),
            fields=["out:int"],
        )
        assert out_of(vm) == 9

    def test_locals_roundtrip(self):
        def emit(a: Asm):
            x = a.local()
            a.const(11).store(x)
            a.load(x).putstatic("T", "out")

        assert out_of(run_single(emit, fields=["out:int"])) == 11

    def test_iinc(self):
        def emit(a: Asm):
            x = a.local()
            a.const(5).store(x)
            a.iinc(x, 3)
            a.iinc(x, -1)
            a.load(x).putstatic("T", "out")

        assert out_of(run_single(emit, fields=["out:int"])) == 7

    def test_arguments_populate_locals(self):
        vm = run_single(
            lambda a: (a.load(0).load(1).sub(), a.putstatic("T", "out")),
            argc=2,
            args=[10, 4],
            fields=["out:int"],
        )
        assert out_of(vm) == 6


class TestControlFlow:
    def test_loop_sum(self):
        def emit(a: Asm):
            i = a.local()
            a.for_range(i, lambda: a.const(10), lambda: (
                a.getstatic("T", "out"), a.load(i), a.add(),
                a.putstatic("T", "out"),
            ))

        assert out_of(run_single(emit, fields=["out:int"])) == 45

    def test_nested_loops(self):
        def emit(a: Asm):
            i, j = a.local(), a.local()
            a.for_range(i, lambda: a.const(5), lambda:
                a.for_range(j, lambda: a.const(4), lambda: (
                    a.getstatic("T", "out"), a.const(1), a.add(),
                    a.putstatic("T", "out"),
                )))

        assert out_of(run_single(emit, fields=["out:int"])) == 20

    def test_if_then_else_both_arms(self):
        for cond, expected in ((1, 10), (0, 20)):
            vm = run_single(
                lambda a, c=cond: a.if_then(
                    lambda: a.const(c),
                    lambda: a.const(10).putstatic("T", "out"),
                    lambda: a.const(20).putstatic("T", "out"),
                ),
                fields=["out:int"],
            )
            assert out_of(vm) == expected


class TestHeapAccess:
    def test_object_fields(self):
        from repro.vm.classfile import FieldDef

        def emit(a: Asm):
            o = a.local()
            a.new("T").store(o)
            a.load(o).const(5).putfield("x")
            a.load(o).getfield("x").putstatic("T", "out")

        asm = Asm("main")
        emit(asm)
        asm.ret()
        cls = build_class("T", ["out:int"], [asm])
        cls.add_field(FieldDef("x", "int"))  # instance field
        vm = make_vm()
        vm.load(cls)
        vm.spawn("T", "main", name="main")
        vm.run()
        assert out_of(vm) == 5

    def test_array_store_load(self):
        def emit(a: Asm):
            arr = a.local()
            a.const(4).newarray().store(arr)
            a.load(arr).const(2).const(99).astore()
            a.load(arr).const(2).aload().putstatic("T", "out")
            a.load(arr).arraylen().putstatic("T", "len")

        vm = run_single(emit, fields=["out:int", "len:int"])
        assert out_of(vm) == 99
        assert out_of(vm, "len") == 4

    def test_newarray_fill(self):
        def emit(a: Asm):
            arr = a.local()
            a.const(3).newarray(fill=7).store(arr)
            a.load(arr).const(0).aload().putstatic("T", "out")

        assert out_of(run_single(emit, fields=["out:int"])) == 7

    def test_statics_roundtrip(self):
        vm = run_single(
            lambda a: (
                a.const(21).putstatic("T", "out"),
                a.getstatic("T", "out"), a.const(2), a.mul(),
                a.putstatic("T", "out"),
            ),
            fields=["out:int"],
        )
        assert out_of(vm) == 42

    def test_classref_pushes_class_object(self):
        vm = run_single(
            lambda a: a.classref("T").putstatic("T", "out"),
            fields=["out:ref"],
        )
        assert out_of(vm).classdef.name == "Class"


class TestCalls:
    def test_invoke_with_result(self):
        helper = Asm("square", argc=1, returns_value=True)
        helper.load(0).load(0).mul().ret()

        main = Asm("main")
        main.const(6).invoke("T", "square", 1).putstatic("T", "out")
        main.ret()

        vm = make_vm()
        vm.load(build_class("T", ["out:int"], [helper, main]))
        vm.spawn("T", "main", name="main")
        vm.run()
        assert out_of(vm) == 36

    def test_recursion(self):
        fact = Asm("fact", argc=1, returns_value=True)
        fact.if_then(
            lambda: fact.load(0).const(2).lt(),
            lambda: fact.const(1).ret(),
        )
        fact.load(0)
        fact.load(0).const(1).sub()
        fact.invoke("T", "fact", 1)
        fact.mul()
        fact.ret()

        main = Asm("main")
        main.const(6).invoke("T", "fact", 1).putstatic("T", "out")
        main.ret()

        vm = make_vm()
        vm.load(build_class("T", ["out:int"], [fact, main]))
        vm.spawn("T", "main", name="main")
        vm.run()
        assert out_of(vm) == 720

    def test_stack_overflow_becomes_guest_error(self):
        forever = Asm("loop", argc=0)
        forever.invoke("T", "loop", 0)
        forever.ret()

        vm = make_vm()
        vm.load(build_class("T", [], [forever]))
        vm.spawn("T", "loop", name="main")
        with pytest.raises(UncaughtGuestException) as exc_info:
            vm.run()
        assert exc_info.value.exc_class == "StackOverflowError"

    def test_thread_result(self):
        m = Asm("main", returns_value=True)
        m.const(123).ret()
        vm = make_vm()
        vm.load(build_class("T", [], [m]))
        t = vm.spawn("T", "main", name="main")
        vm.run()
        assert t.result == 123
        assert t.state is ThreadState.TERMINATED


class TestNatives:
    def test_println_captures(self):
        vm = run_single(
            lambda a: (a.const("hello").native("println", 1)),
        )
        assert vm.console == ["hello"]

    def test_custom_native_with_return(self):
        def emit(a: Asm):
            a.const(20).const(22).native("plus", 2)
            a.putstatic("T", "out")

        asm = Asm("main")
        emit(asm)
        asm.ret()
        vm = make_vm()
        vm.register_native("plus", lambda vm_, t, args: args[0] + args[1])
        vm.load(build_class("T", ["out:int"], [asm]))
        vm.spawn("T", "main", name="main")
        vm.run()
        assert out_of(vm) == 42

    def test_identity_hash(self):
        def emit(a: Asm):
            a.new("T").native("identityHashCode", 1)
            a.putstatic("T", "out")

        vm = run_single(emit, fields=["out:int"])
        assert out_of(vm) > 0


class TestIntrospectionOps:
    def test_tid(self):
        vm = run_single(
            lambda a: a.tid().putstatic("T", "out"), fields=["out:int"]
        )
        assert out_of(vm) == 0

    def test_time_monotonic(self):
        def emit(a: Asm):
            a.time().putstatic("T", "t0")
            i = a.local()
            a.for_range(i, lambda: a.const(50), lambda: a.const(0).pop())
            a.time().putstatic("T", "t1")

        vm = run_single(emit, fields=["t0:int", "t1:int"])
        assert out_of(vm, "t1") > out_of(vm, "t0") > 0

    def test_rand_within_bound(self):
        def emit(a: Asm):
            arr = a.local()
            a.const(200).newarray().store(arr)
            i = a.local()
            a.for_range(i, lambda: a.const(200), lambda: (
                a.load(arr), a.load(i), a.rand(7), a.astore(),
            ))
            a.load(arr).putstatic("T", "out")

        vm = run_single(emit, fields=["out:ref"])
        values = vm.get_static("T", "out").snapshot()
        assert set(values) <= set(range(7))
        assert len(set(values)) > 1  # actually random

    def test_determinism_across_vms(self):
        """Same seed, same program -> bit-identical virtual execution."""
        def emit(a: Asm):
            i = a.local()
            a.for_range(i, lambda: a.const(100), lambda: (
                a.getstatic("T", "out"), a.rand(1000), a.add(),
                a.putstatic("T", "out"),
            ))

        vm1 = run_single(emit, fields=["out:int"], seed=99)
        vm2 = run_single(emit, fields=["out:int"], seed=99)
        assert out_of(vm1) == out_of(vm2)
        assert vm1.clock.now == vm2.clock.now

    def test_different_seeds_differ(self):
        def emit(a: Asm):
            a.rand(10**9).putstatic("T", "out")

        vm1 = run_single(emit, fields=["out:int"], seed=1)
        vm2 = run_single(emit, fields=["out:int"], seed=2)
        assert out_of(vm1) != out_of(vm2)
