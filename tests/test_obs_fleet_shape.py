"""The 1020-guest-thread ``fleet`` server preset through the span
pipeline: pinned artifact shape, output-size budgets (the downsampling
stress test), terminal rendering at scale, and byte-identity across
worker counts."""

from __future__ import annotations

import json

import pytest

from repro.obs.capture import (
    ObsSpec,
    capture_run,
    execute_obs_spec,
    obs_spec_key,
)

#: hard output-size budgets for the fleet capture — the artifacts must
#: stay shippable over the fleet wire however many guest threads run
SPANS_JSONL_BUDGET = 1_000_000
CHROME_JSON_BUDGET = 2_500_000

SPEC = ObsSpec(scenario="server-fleet")


@pytest.fixture(scope="module")
def artifact():
    return capture_run(SPEC)


def test_fleet_summary_pinned(artifact):
    s = artifact["summary"]
    assert s["outcome"] == "completed"
    assert s["threads"] == 1020
    assert s["clock"] == 4010588
    assert s["spans"] == 5767
    assert s["episodes"] == 1430
    assert s["inversion_cycles"] == 285264


def test_fleet_observability_not_degraded(artifact):
    """1020 threads must not overflow the tracer or the samplers."""
    s = artifact["summary"]
    assert s["trace"]["dropped"] == 0
    assert s["trace"]["sink_errors"] == 0
    assert s["counter_samples_dropped"] == 0


def test_fleet_output_size_budgets(artifact):
    spans_bytes = len(artifact["spans_jsonl"].encode("utf-8"))
    chrome_bytes = len(artifact["chrome_json"].encode("utf-8"))
    assert spans_bytes <= SPANS_JSONL_BUDGET, spans_bytes
    assert chrome_bytes <= CHROME_JSON_BUDGET, chrome_bytes
    # and they are real documents, not truncation artifacts
    doc = json.loads(artifact["chrome_json"])
    assert doc["traceEvents"]
    lines = artifact["spans_jsonl"].strip().splitlines()
    assert all(json.loads(line) for line in lines)


def test_fleet_every_tier_on_the_wire(artifact):
    """All 12 SLA tiers appear in the span stream by name prefix."""
    threads = set()
    for line in artifact["spans_jsonl"].strip().splitlines():
        doc = json.loads(line)
        if "thread" in doc:
            threads.add(doc["thread"].split("-", 1)[0])
    for i in range(12):
        assert f"t{i:02d}" in threads, f"tier t{i:02d} missing"


def test_fleet_timeline_renders_within_terminal_budget():
    """render_timeline downsamples 1020 rows into a bounded-width
    terminal view instead of emitting megabyte lines."""
    from repro.server.plane import AbortStormDetector
    from repro.server.presets import get_preset
    from repro.server.workload import build_server, expected_cycle_cap
    from repro.vm.timeline import render_timeline
    from repro.vm.vmcore import JVM, VMOptions

    config = get_preset("fleet")
    vm = JVM(VMOptions(
        mode="rollback", scheduler="priority", seed=SPEC.seed,
        raise_on_uncaught=False, trace=True,
        max_cycles=expected_cycle_cap(config, SPEC.seed),
    ))
    build_server(config, SPEC.seed).install(vm)
    vm.slice_hooks.append(AbortStormDetector(config))
    vm.run()
    text = render_timeline(vm, max_width=120)
    lines = text.splitlines()
    assert len(lines) >= 1020  # one row per guest thread, at least
    assert max(len(line) for line in lines) <= 120


def test_fleet_capture_byte_identical_across_jobs(artifact):
    """The fleet capture travels the engine like any artifact: pool
    execution returns byte-identical spans/chrome output."""
    from repro.bench.parallel import RunEngine

    specs = [SPEC, ObsSpec(scenario="server-fleet", seed=SPEC.seed + 1)]
    pooled = RunEngine(jobs=2).map(
        execute_obs_spec, specs, key_fn=obs_spec_key
    )
    assert pooled[0]["spans_jsonl"] == artifact["spans_jsonl"]
    assert pooled[0]["chrome_json"] == artifact["chrome_json"]
    # the sibling seed is a genuinely different run, same budgets
    assert pooled[1]["spans_jsonl"] != artifact["spans_jsonl"]
    assert len(pooled[1]["chrome_json"].encode()) <= CHROME_JSON_BUDGET
