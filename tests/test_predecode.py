"""Unit tests for the predecoder (:mod:`repro.vm.predecode`).

The parity suite (``test_interp_parity.py``) proves the fast interpreter
is observationally identical to the reference; these tests pin the
*structure* the predecoder produces — where blocks start and end, that
cost batching is the exact sum of per-instruction link costs, that the
fault-repair suffix arrays are right, which superinstructions fire, and
that the cache lifecycle (lazy build, invalidation, no leak through
``MethodDef.copy``) behaves.
"""

from __future__ import annotations

from conftest import build_class, make_vm
from repro.vm import bytecode as bc
from repro.vm.assembler import Asm
from repro.vm.predecode import (
    find_leaders,
    find_runs,
    predecode_method,
    render_decoded,
)


def _linked(emit, mode: str = "unmodified", fields=(), **options):
    """Build one method, load it into a VM, return (vm, linked method)."""
    a = Asm("main")
    emit(a)
    a.ret()
    cls = build_class("T", fields, [a])
    vm = make_vm(mode, **options)
    loaded = vm.load(cls)
    return vm, loaded.method("main")


# ----------------------------------------------------------- leaders/runs
def test_leaders_split_at_branch_targets_and_nonfusable() -> None:
    def emit(a: Asm) -> None:
        skip = a.label("skip")
        a.const(1).if_(skip)     # 0 1: forward branch to 4
        a.const(2).pop()         # 2 3
        a.place(skip)
        a.time()                 # 4: non-fusable (flushes the clock)
        a.pop()                  # 5

    vm, m = _linked(emit)
    leaders = find_leaders(m)
    assert 0 in leaders
    assert 4 in leaders            # branch target
    assert 5 in leaders            # successor of the non-fusable TIME
    runs = dict.fromkeys(r[0] for r in find_runs(m, leaders))
    # [0,2) terminated by the branch; [2,4) cut at the leader; TIME and
    # the lone POP at 5 stay in the dispatch chain (singleton skip).
    assert find_runs(m, leaders)[:2] == [(0, 2), (2, 4)]
    assert 4 not in runs and 5 not in runs


def test_backward_branch_is_yield_point_and_never_fused() -> None:
    def emit(a: Asm) -> None:
        i = a.local("i")
        a.const(0).store(i)
        top = a.label("top")
        a.place(top)
        a.iinc(i, 1)
        a.load(i).const(3).lt().if_(top)   # backward => ypoint at link

    vm, m = _linked(emit)
    back = next(
        ins for ins in m.code if bc.is_branch(ins.op) and ins.ypoint
    )
    assert back.op == bc.IF
    dm = predecode_method(vm, m)
    for b in dm.block_list:
        for pc in range(b.start, b.end):
            assert not m.code[pc].ypoint, "yield point fused into a block"


# ------------------------------------------------------- block accounting
def test_block_cost_is_exact_sum_and_suffixes_match() -> None:
    def emit(a: Asm) -> None:
        a.const(2).const(3).add().const(4).mul().pop()

    vm, m = _linked(emit)
    dm = predecode_method(vm, m)
    (b,) = dm.block_list
    assert (b.start, b.end) == (0, 6)
    run = m.code[0:6]
    assert b.cost == sum(ins.cost for ins in run)
    assert b.count == 6
    # suffix_cost[k] = static cost strictly after relative index k
    for k in range(6):
        assert b.suffix_cost[k] == sum(ins.cost for ins in run[k + 1:])
        assert b.suffix_count[k] == 6 - (k + 1)


def test_heap_ops_fused_with_their_link_costs() -> None:
    def emit(a: Asm) -> None:
        a.getstatic("T", "x").const(1).add().putstatic("T", "x")

    vm, m = _linked(emit, fields=["x"])
    dm = predecode_method(vm, m)
    (b,) = dm.block_list
    assert b.count == 4
    costs = vm.options.cost_model
    assert b.cost == 2 * costs.heap_access + 2 * costs.simple


# -------------------------------------------------------- superinstructions
def test_cmp_branch_and_const_div_superinstructions() -> None:
    def emit(a: Asm) -> None:
        done = a.label("done")
        a.const(7).const(3).div()      # const+div (positive divisor)
        a.const(5).lt().if_(done)      # cmp+branch
        a.const(1).pop()
        a.place(done)

    vm, m = _linked(emit)
    dm = predecode_method(vm, m)
    assert dm.superinstructions.get("cmp+branch", 0) >= 1
    assert dm.superinstructions.get("const+div", 0) >= 1


def test_alu_store_superinstruction() -> None:
    def emit(a: Asm) -> None:
        t = a.local("t")
        a.const(2).const(3).add().store(t)
        a.load(t).pop()

    vm, m = _linked(emit)
    dm = predecode_method(vm, m)
    assert dm.superinstructions.get("alu+store", 0) >= 1


def test_div_by_zero_constant_keeps_the_checked_path() -> None:
    """CONST 0 as divisor must not take the unchecked const+div fast path."""
    def emit(a: Asm) -> None:
        a.const(5).const(0).div().pop()

    vm, m = _linked(emit)
    dm = predecode_method(vm, m)
    assert dm.superinstructions.get("const+div", 0) == 0
    (b,) = dm.block_list
    assert b.raising


# ------------------------------------------------------------ cache lifecycle
def test_predecode_is_cached_and_invalidation_drops_it() -> None:
    def emit(a: Asm) -> None:
        a.const(1).const(2).add().pop()

    vm, m = _linked(emit)
    dm = predecode_method(vm, m)
    assert predecode_method(vm, m) is dm
    m.invalidate_decoded()
    assert predecode_method(vm, m) is not dm


def test_copy_never_carries_predecode_state() -> None:
    def emit(a: Asm) -> None:
        a.const(1).const(2).add().pop()

    vm, m = _linked(emit)
    predecode_method(vm, m)
    assert "_decoded" in m.__dict__
    assert "_decoded" not in m.copy().__dict__


def test_trace_memory_disables_heap_fusion() -> None:
    """Per-access mem events require chain execution of heap ops; the
    pure arithmetic around them still fuses."""
    def emit(a: Asm) -> None:
        a.getstatic("T", "x").const(1).add().putstatic("T", "x")

    vm, m = _linked(emit, fields=["x"], trace_memory=True)
    dm = predecode_method(vm, m)
    fused_pcs = {
        pc for b in dm.block_list for pc in range(b.start, b.end)
    }
    for pc in fused_pcs:
        assert m.code[pc].op not in bc.FUSABLE_HEAP


# ------------------------------------------------------------------ dumps
def test_render_decoded_mentions_blocks_and_source() -> None:
    def emit(a: Asm) -> None:
        a.const(2).const(3).add().pop()

    vm, m = _linked(emit)
    dump = render_decoded(predecode_method(vm, m))
    assert "T.main" in dump
    assert "block [0," in dump
    assert "def _b0(" in dump
