"""The ``python -m repro.server`` CLI, its byte-identity contract, the
obs-plane robustness summary, and the new server scenarios in the obs
registry."""

from __future__ import annotations

import json
import os
import subprocess

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.scenarios import scenarios as obs_scenarios
from repro.server.__main__ import main as server_main
from repro.server.plane import ServerSpec, server_cell_key

SERIAL = ["--jobs", "1", "--no-cache"]


def _server(capsys, *argv):
    rc = server_main(list(argv) + SERIAL)
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


class TestServerCli:
    def test_list(self, capsys):
        rc = server_main(["--list"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("baseline", "storm", "chaos-smoke", "soak", "fleet"):
            assert name in out

    def test_unknown_preset(self, capsys):
        with pytest.raises(KeyError):
            server_main(["--preset", "nope"] + SERIAL)

    def test_chaos_smoke_human(self, capsys):
        rc, out, err = _server(
            capsys, "--preset", "chaos-smoke", "--chaos"
        )
        assert rc == 0
        assert "outcome=completed" in out
        assert "violations: none" in out
        assert "robustness:" in out
        assert "faults injected:" in out
        assert "OK: zero invariant violations" in err

    def test_json_is_machine_readable(self, capsys):
        rc, out, _ = _server(
            capsys, "--preset", "chaos-smoke", "--chaos", "--json"
        )
        assert rc == 0
        report = json.loads(out)
        assert report["preset"] == "chaos-smoke"
        assert report["violations"] == 0
        run = report["runs"][0]
        assert run["format"] == "repro.server/1"
        assert run["chaos"] is True

    def test_stdout_ignores_worker_count(self, capsys):
        """Satellite 2 at the CLI layer: the report is byte-identical
        for any ``--jobs`` value."""
        outputs = []
        for jobs in ("1", "3"):
            rc = server_main([
                "--preset", "chaos-smoke", "--chaos", "--json",
                "--jobs", jobs, "--no-cache",
            ])
            assert rc == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_stdout_ignores_interp(self, capsys):
        outputs = []
        for interp in ("fast", "reference"):
            rc, out, _ = _server(
                capsys, "--preset", "chaos-smoke", "--json",
                "--interp", interp,
            )
            assert rc == 0
            outputs.append(out)
        assert outputs[0] == outputs[1]

    def test_inject_bug_inverts_exit_code(self, capsys):
        rc, _, err = _server(
            capsys, "--preset", "chaos-smoke",
            "--inject-bug", "undo-drop",
        )
        assert rc == 0
        assert "seeded defect detected" in err

    def test_requests_rescales(self, capsys):
        rc, out, _ = _server(
            capsys, "--preset", "chaos-smoke", "--requests", "60",
            "--json",
        )
        assert rc == 0
        report = json.loads(out)
        assert report["requests"] == 60
        total = sum(
            t["requests"] for t in report["runs"][0]["tiers"].values()
        )
        assert 50 <= total <= 60

    def test_compare_reports_normalized_elapsed(self, capsys):
        rc, out, _ = _server(
            capsys, "--preset", "chaos-smoke", "--compare", "--json"
        )
        assert rc == 0
        report = json.loads(out)
        ratios = report["normalized_elapsed"]
        assert len(ratios) == 1
        assert float(next(iter(ratios.values()))) > 0

    def test_cell_key_distinguishes_specs(self):
        base = ServerSpec(preset="chaos-smoke")
        assert server_cell_key(base) == server_cell_key(base)
        for other in (
            ServerSpec(preset="storm"),
            ServerSpec(preset="chaos-smoke", seed_index=2),
            ServerSpec(preset="chaos-smoke", chaos=True),
            ServerSpec(preset="chaos-smoke", mode="inheritance"),
        ):
            assert server_cell_key(other) != server_cell_key(base)


class TestReplayCommand:
    """REPLAY fidelity: when a sweep fails, one stderr line per
    offending cell must round-trip every flag shaping that cell, and
    executing the emitted command verbatim reproduces the failure."""

    REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    def _cli(self, command: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            command, shell=True, cwd=self.REPO,
            capture_output=True, text=True,
        )

    def test_replay_flag_runs_one_cell(self, capsys):
        rc = server_main(
            ["--preset", "chaos-smoke", "--chaos", "--replay", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        run = json.loads(out)
        assert run["format"] == "repro.server/1"
        assert run["violations"] == []

    def test_replay_matches_sweep_cell(self, capsys):
        rc, out, _ = _server(
            capsys, "--preset", "chaos-smoke", "--chaos", "--json"
        )
        assert rc == 0
        sweep_run = json.loads(out)["runs"][0]
        rc = server_main(
            ["--preset", "chaos-smoke", "--chaos", "--replay", "1"]
        )
        replay_run = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert replay_run == sweep_run

    def test_replay_command_roundtrips_all_cell_flags(self):
        from repro.server.__main__ import _parser, _replay_command, _spec

        args = _parser().parse_args([
            "--preset", "storm", "--requests", "120",
            "--mode", "inheritance", "--interp", "reference",
            "--chaos", "--profile",
        ])
        line = _replay_command(args, 4)
        assert line.startswith(
            "REPLAY: PYTHONPATH=src python -m repro.server "
        )
        argv = line.split("python -m repro.server")[1].split()
        back = _parser().parse_args(argv)
        assert back.replay == 4
        assert _spec(back, back.replay) == _spec(args, 4)

    def test_replay_line_reproduces_failure_verbatim(self):
        # Force a deterministic failure: in unmodified mode no rollback
        # ever runs, so the seeded undo-drop defect cannot fire and the
        # negative control reports it undetected (exit 1).
        probe = self._cli(
            "PYTHONPATH=src python -m repro.server --preset chaos-smoke "
            "--mode unmodified --inject-bug undo-drop --jobs 1 --no-cache"
        )
        assert probe.returncode == 1
        assert "undetected" in probe.stderr
        replays = [
            line for line in probe.stderr.splitlines()
            if line.startswith("REPLAY: ")
        ]
        assert len(replays) == 1
        line = replays[0]
        for flag in (
            "--preset chaos-smoke", "--mode unmodified",
            "--interp fast", "--inject-bug undo-drop", "--replay 1",
        ):
            assert flag in line, flag
        command = line[len("REPLAY: "):].split("  #")[0]
        replay = self._cli(command)
        assert replay.returncode == 1  # the failure reproduces
        run = json.loads(replay.stdout)
        assert run["violations"] == []  # still undetected, same cell
        assert run["mode"] == "unmodified"
        assert run["inject_bug"] == "undo-drop"


class TestObsIntegration:
    def test_server_scenarios_registered(self):
        table = obs_scenarios()
        assert "server-smoke" in table
        assert "server-storm" in table
        assert "faults" in table["server-storm"].options

    def test_obs_list_includes_server(self, capsys):
        rc = obs_main(["--list"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "server-smoke" in out and "server-storm" in out

    def test_summary_prints_robustness(self, capsys):
        """Satellite 1: the robustness counters appear in every obs
        summary, not just server runs."""
        rc = obs_main(
            ["summary", "--scenario", "deadlock-pair"] + SERIAL
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "robustness:" in out
        for key in (
            "retry_budget_exhausted", "degradations_to_inheritance",
            "watchdog_trips",
        ):
            assert key in out

    def test_server_smoke_capture(self, capsys):
        rc = obs_main(
            ["summary", "--scenario", "server-smoke", "--json"] + SERIAL
        )
        out = capsys.readouterr().out
        assert rc == 0
        summary = json.loads(out)
        assert summary["outcome"] == "completed"
        assert summary["robustness"]["watchdog_trips"] == 0
