"""Unit tests for Section records and the bytecode module helpers."""

import itertools

import pytest

from repro.core.sections import (
    REASON_DEPENDENCY,
    REASON_NATIVE,
    REASON_UNTRANSFORMED,
    REASON_WAIT,
    Section,
)
from repro.vm import bytecode as bc
from repro.vm.bytecode import Instruction, disassemble, mnemonic
from repro.vm.classfile import ClassDef, MethodDef
from repro.vm.heap import VMObject
from repro.vm.monitors import Monitor
from repro.vm.threads import Frame, VMThread


def make_thread(tid=1):
    m = MethodDef(name="run", code=[Instruction(bc.RETURN, 0)],
                  max_locals=0)
    m.class_name = "T"
    return VMThread(tid, f"t{tid}", m, [])


#: sids are allocated by the owning VM's RevocationManager in production;
#: these unit tests stand in for it with a plain counter
_sids = itertools.count(1)


def make_section(thread, *, slot=0, handler_pc=5, recursive=False):
    mon = Monitor(VMObject(1, ClassDef("C")))
    frame = Frame(thread.entry_method, [], 0)
    return Section(
        thread, mon, frame, f"sync#{slot}",
        sid=next(_sids), slot=slot, resume_pc=1, handler_pc=handler_pc,
        log_mark=0, recursive=recursive, enter_time=100,
    )


class TestSection:
    def test_ids_unique(self):
        t = make_thread()
        a, b = make_section(t), make_section(t)
        assert a.sid != b.sid

    def test_revocable_by_default(self):
        s = make_section(make_thread())
        assert s.revocable
        assert s.nonrevocable_reason is None

    def test_untransformed_sections_never_revocable(self):
        """A monitorenter with no injected rollback scope (handler_pc is
        None) cannot be revoked."""
        t = make_thread()
        s = make_section(t, handler_pc=None)
        assert not s.revocable
        assert s.nonrevocable_reason == REASON_UNTRANSFORMED

    def test_mark_nonrevocable_once(self):
        s = make_section(make_thread())
        assert s.mark_nonrevocable(REASON_NATIVE) is True
        assert s.mark_nonrevocable(REASON_WAIT) is False  # first wins
        assert s.nonrevocable_reason == REASON_NATIVE

    def test_depth_tracks_nesting(self):
        t = make_thread()
        outer = make_section(t)
        t.sections.append(outer)
        inner = make_section(t, slot=1)
        assert outer.depth == 0 and outer.is_outermost
        assert inner.depth == 1 and not inner.is_outermost

    def test_repr_mentions_state(self):
        t = make_thread()
        s = make_section(t, recursive=True)
        s.mark_nonrevocable(REASON_DEPENDENCY)
        text = repr(s)
        assert "recursive" in text
        assert REASON_DEPENDENCY in text


class TestThreadSectionHelpers:
    def test_section_for_monitor_skips_recursive(self):
        t = make_thread()
        outer = make_section(t)
        t.sections.append(outer)
        recursive = Section(
            t, outer.monitor, outer.frame, "sync#9",
            sid=next(_sids), slot=1, resume_pc=1, handler_pc=7,
            log_mark=0, recursive=True, enter_time=200,
        )
        t.sections.append(recursive)
        assert t.section_for_monitor(outer.monitor) is outer

    def test_innermost_section(self):
        t = make_thread()
        assert t.innermost_section() is None
        s = make_section(t)
        t.sections.append(s)
        assert t.innermost_section() is s
        assert t.in_synchronized_section()


class TestBytecodeModule:
    def test_mnemonics_cover_all_opcodes(self):
        for op in bc.SPEC:
            assert mnemonic(op)

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            mnemonic(9999)
        with pytest.raises(ValueError):
            Instruction(9999)

    def test_is_branch_and_is_store(self):
        assert bc.is_branch(bc.GOTO) and bc.is_branch(bc.IF)
        assert not bc.is_branch(bc.ADD)
        assert bc.is_store(bc.PUTFIELD) and bc.is_store(bc.ASTORE)
        assert not bc.is_store(bc.GETFIELD)

    def test_instruction_copy_independent(self):
        ins = Instruction(bc.CONST, 5)
        ins.barrier = True
        ins.ypoint = True
        dup = ins.copy()
        dup.a = 6
        assert ins.a == 5
        assert dup.barrier and dup.ypoint

    def test_repr_flags(self):
        ins = Instruction(bc.PUTFIELD, "x")
        ins.barrier = True
        assert "[barrier]" in repr(ins)

    def test_disassemble(self):
        code = [Instruction(bc.CONST, 1), Instruction(bc.RETURN, 0)]
        text = disassemble(code)
        assert "0: const 1" in text
        assert "1: return" in text
