"""Superblock trace compilation: formation, eligibility bail-outs, and
guard-failure parity (PR 7 tentpole).

Superblocks may only change speed, never behaviour, so every behavioural
test here runs the same guest program once per interpreter and compares
the full observable surface — clock value, clock event count, checker
fingerprint, metrics, trace stream.  The scenarios target the escape
hatches of the guard-and-commit protocol specifically: a revocation
arriving at the anchor, a fault plane going quiet mid-run, a guest
exception unwinding out of a fused iteration, quantum preemption, and
starvation detection firing from inside the generated function.
"""

from __future__ import annotations

import itertools

import pytest

from repro import FaultPlan
from repro.check.oracle import final_fingerprint, fingerprint_digest
from repro.core import sections
from repro.errors import StarvationError, UncaughtGuestException
from repro.vm.assembler import Asm
from repro.vm.predecode import predecode_method, render_decoded
from repro.vm.tracecomp import SuperBlock
from repro.vm.vmcore import JVM, VMOptions

from conftest import build_class, make_vm


def _fresh() -> None:
    """Reset the process-global build/run ordinals (see
    tests/test_interp_parity.py for why)."""
    Asm._sync_counter = 0
    sections._section_ids = itertools.count(1)


def _snap(vm: JVM, outcome: str) -> dict:
    return {
        "outcome": outcome,
        "clock_now": vm.clock.now,
        "clock_events": vm.clock.events,
        "fingerprint": fingerprint_digest(final_fingerprint(vm, outcome)),
        "metrics": vm.metrics(),
        "trace": list(vm.tracer.events),
    }


def _run(install, mode: str, interp: str, **opts) -> dict:
    _fresh()
    vm = make_vm(mode, interp=interp, seed=7, **opts)
    install(vm)
    outcome = "ok"
    try:
        vm.run()
    except StarvationError:
        outcome = "starved"
    except UncaughtGuestException as exc:
        outcome = f"uncaught:{exc}"
    return _snap(vm, outcome)


def _assert_parity(install, mode: str = "rollback", **opts) -> dict:
    """Run fast and reference; everything must match.  Returns the fast
    snapshot so callers can additionally assert the scenario engaged."""
    ref = _run(install, mode, "reference", **opts)
    fast = _run(install, mode, "fast", **opts)
    for key in ref:
        assert fast[key] == ref[key], f"{mode}: {key} diverged"
    return fast


# ------------------------------------------------------------- formation
def _hot_loop(count: int = 100) -> Asm:
    a = Asm("run", argc=0)
    i = a.local()
    a.for_range(i, lambda: a.const(count), lambda: (
        a.getstatic("C", "value"), a.const(1), a.add(),
        a.putstatic("C", "value"),
    ))
    a.ret()
    return a


def _decode(asm: Asm, mode: str = "unmodified"):
    _fresh()
    vm = make_vm(mode, interp="fast")
    vm.load(build_class("C", ["lock:ref", "value"], [asm]))
    method = vm.classes["C"].method("run")
    return predecode_method(vm, method)


class TestFormation:
    def test_hot_loop_forms_a_superblock(self):
        dm = _decode(_hot_loop())
        assert dm.superblock_list, "for_range back-edge must fuse"
        sb = dm.superblock_list[0]
        assert isinstance(sb, SuperBlock)
        assert sb.head < sb.anchor
        assert callable(sb.fn)
        # the dispatch table points the anchor pc at the superblock
        assert dm.superblocks[sb.anchor] is sb
        # non-anchor pcs carry no superblock
        others = [s for pc, s in enumerate(dm.superblocks)
                  if s is not None and pc != sb.anchor]
        assert others == []

    def test_superblock_forms_inside_sync_section(self):
        """Barriered stores are batchable, so a loop inside a rollback
        section still fuses (the bench's dominant shape)."""
        a = Asm("run", argc=0)
        a.getstatic("C", "lock")
        with a.sync():
            i = a.local()
            a.for_range(i, lambda: a.const(50), lambda: (
                a.getstatic("C", "value"), a.const(1), a.add(),
                a.putstatic("C", "value"),
            ))
        a.ret()
        dm = _decode(a, mode="rollback")
        assert dm.superblock_list

    def test_render_decoded_shows_superblock_section(self):
        dm = _decode(_hot_loop())
        text = render_decoded(dm)
        sb = dm.superblock_list[0]
        assert f"-- superblock @{sb.anchor}" in text
        assert f"def _s{sb.anchor}(" in sb.source

    def test_loop_with_yield_point_in_body_not_fused(self):
        """A body op that is itself a yield point (here a call) keeps
        the loop block-at-a-time."""
        callee = Asm("leaf", argc=0)
        callee.const(1).putstatic("C", "value")
        callee.ret()
        a = Asm("run", argc=0)
        i = a.local()
        a.for_range(i, lambda: a.const(10), lambda: (
            a.invoke("C", "leaf", 0),
        ))
        a.ret()
        _fresh()
        vm = make_vm("unmodified", interp="fast")
        vm.load(build_class("C", ["lock:ref", "value"], [a, callee]))
        dm = predecode_method(vm, vm.classes["C"].method("run"))
        assert dm.superblock_list == []

    def test_invalidate_drops_superblocks(self):
        _fresh()
        vm = make_vm("unmodified", interp="fast")
        vm.load(build_class("C", ["lock:ref", "value"], [_hot_loop()]))
        method = vm.classes["C"].method("run")
        dm = predecode_method(vm, method)
        assert dm.superblock_list
        method.invalidate_decoded()
        assert method.__dict__.get("_decoded") is None


# ------------------------------------------------- guard-failure parity
def _install_inversion(vm: JVM) -> None:
    """Priority inversion over a fused loop inside a section: the high
    thread's revocation lands at the low thread's anchor yield point."""
    run = Asm("run", argc=2)  # (iters, delay)
    run.load(1).sleep()
    run.getstatic("T", "lock")
    with run.sync():
        i = run.local()
        run.for_range(i, lambda: run.load(0), lambda: (
            run.getstatic("T", "counter"), run.const(1), run.add(),
            run.putstatic("T", "counter"),
        ))
    run.ret()
    vm.load(build_class("T", ["lock:ref", "counter:int"], [run]))
    vm.set_static("T", "lock", vm.new_object("T"))
    vm.spawn("T", "run", args=[2_000, 1], priority=1, name="low")
    vm.spawn("T", "run", args=[60, 6_000], priority=10, name="high")


class TestGuardParity:
    def test_revocation_arriving_mid_loop(self):
        """A pending revocation must refuse superblock entry and take
        the inline rollback path, byte-identical to the reference."""
        fast = _assert_parity(_install_inversion, "rollback")
        assert fast["metrics"]["support"]["revocations_completed"] >= 1

    @pytest.mark.parametrize("mode", ("inheritance", "ceiling"))
    def test_inversion_parity_other_policies(self, mode):
        _assert_parity(_install_inversion, mode)

    def test_fault_plane_quieting_mid_run(self):
        """With guest-exception faults armed the anchor probe must run
        every iteration (no fusion); once the injection budget is spent
        ``yield_quiet`` flips and fusion resumes — both phases must stay
        byte-identical to the reference."""
        def install(vm: JVM) -> None:
            run = Asm("run", argc=0)
            i = run.local()
            run.for_range(i, lambda: run.const(500), lambda: (
                run.getstatic("C", "value"), run.const(1), run.add(),
                run.putstatic("C", "value"),
            ))
            run.ret()
            vm.load(build_class("C", ["lock:ref", "value"], [run]))
            for n in range(4):
                vm.spawn("C", "run", priority=5, name=f"t{n}")

        fast = _assert_parity(
            install, "rollback",
            faults=FaultPlan(guest_exception_rate=0.01, max_injections=2),
            raise_on_uncaught=False,
        )
        # the scenario engaged: the budget was actually spent, so the
        # run crossed from probing to fused execution
        injected = sum(
            e.details.get("count", 1)
            for e in fast["trace"] if e.kind == "fault_inject"
        )
        assert injected == 2

    def test_guest_exception_unwinding_from_fused_run(self):
        """A divide fault on iteration 50 of a fused loop, caught by a
        handler *outside* the loop: the superblock's partial-iteration
        accumulators and faulting pc must reproduce the reference's
        charge-before-execute accounting exactly."""
        def install(vm: JVM) -> None:
            a = Asm("run", argc=0)
            i = a.local()

            def body():
                a.for_range(i, lambda: a.const(200), lambda: (
                    a.getstatic("C", "value"), a.const(1), a.add(),
                    a.putstatic("C", "value"),
                    a.const(100), a.const(50),
                    a.getstatic("C", "value"), a.sub(), a.div(),
                    a.putstatic("C", "out"),
                ))

            def on_arith():
                a.pop()
                a.const(-1).putstatic("C", "err")

            a.try_(body, catches=[("ArithmeticException", on_arith)])
            a.ret()
            vm.load(build_class(
                "C", ["lock:ref", "value", "out", "err"], [a]
            ))
            vm.spawn("C", "run", priority=5, name="t0")

        for mode in ("unmodified", "rollback"):
            fast = _assert_parity(install, mode)
            assert fast["outcome"] == "ok"

    def test_quantum_preemption_inside_superblock(self):
        """Two competing threads force the in-trace preemption exit
        (commit + return -1) many times; slice boundaries, context
        switches and the clock must match the reference."""
        def install(vm: JVM) -> None:
            run = Asm("run", argc=0)
            i = run.local()
            run.for_range(i, lambda: run.const(5_000), lambda: (
                run.getstatic("C", "value"), run.const(1), run.add(),
                run.putstatic("C", "value"),
            ))
            run.ret()
            vm.load(build_class("C", ["lock:ref", "value"], [run]))
            vm.spawn("C", "run", priority=5, name="a")
            vm.spawn("C", "run", priority=5, name="b")

        fast = _assert_parity(install, "unmodified")
        assert fast["metrics"]["context_switches"] >= 2

    def test_starvation_raised_from_superblock(self):
        """The in-trace max-cycles check must starve at the same virtual
        cycle as the reference's per-yield-point check."""
        def install(vm: JVM) -> None:
            run = Asm("run", argc=0)
            i = run.local()
            run.for_range(i, lambda: run.const(1_000_000), lambda: (
                run.getstatic("C", "value"), run.const(1), run.add(),
                run.putstatic("C", "value"),
            ))
            run.ret()
            vm.load(build_class("C", ["lock:ref", "value"], [run]))
            vm.spawn("C", "run", priority=5, name="t0")

        fast = _assert_parity(install, "unmodified", max_cycles=20_000)
        assert fast["outcome"] == "starved"
