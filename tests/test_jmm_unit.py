"""Unit tests for the JMM dependency tracker (paper §2.1–2.2)."""

import pytest

from repro.core.jmm import JmmTracker
from repro.vm.bytecode import Instruction, RETURN
from repro.vm.classfile import MethodDef
from repro.vm.threads import VMThread


def make_thread(tid):
    m = MethodDef(name="run", code=[Instruction(RETURN, 0)])
    m.class_name = "T"
    return VMThread(tid, f"t{tid}", m, [])


class FakeSection:
    """Stand-in for repro.core.sections.Section in unit tests."""

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return f"S({self.name})"


LOC_A = ("f", 1, "x")
LOC_B = ("f", 2, "y")


@pytest.fixture
def tracker():
    return JmmTracker()


class TestReadWriteDependency:
    def test_read_by_other_thread_returns_writers_sections(self, tracker):
        writer, reader = make_thread(1), make_thread(2)
        s = FakeSection("s")
        tracker.on_write(writer, LOC_A, (s,))
        assert tracker.on_read(reader, LOC_A) == (s,)

    def test_read_by_writer_itself_is_free(self, tracker):
        writer = make_thread(1)
        tracker.on_write(writer, LOC_A, (FakeSection("s"),))
        assert tracker.on_read(writer, LOC_A) == ()

    def test_read_of_untouched_location_is_free(self, tracker):
        assert tracker.on_read(make_thread(1), LOC_B) == ()

    def test_latest_write_wins(self, tracker):
        """The reader observes the latest value; only the latest write's
        enclosing sections matter."""
        writer, reader = make_thread(1), make_thread(2)
        s1, s2 = FakeSection("outer-only"), FakeSection("outer+inner")
        tracker.on_write(writer, LOC_A, (s1,))
        tracker.on_write(writer, LOC_A, (s1, s2))
        assert tracker.on_read(reader, LOC_A) == (s1, s2)

    def test_multiple_writers_all_reported(self, tracker):
        w1, w2, reader = make_thread(1), make_thread(2), make_thread(3)
        s1, s2 = FakeSection("a"), FakeSection("b")
        tracker.on_write(w1, LOC_A, (s1,))
        tracker.on_write(w2, LOC_A, (s2,))
        assert set(tracker.on_read(reader, LOC_A)) == {s1, s2}

    def test_reader_who_is_also_writer_sees_only_others(self, tracker):
        w1, w2 = make_thread(1), make_thread(2)
        s1, s2 = FakeSection("a"), FakeSection("b")
        tracker.on_write(w1, LOC_A, (s1,))
        tracker.on_write(w2, LOC_A, (s2,))
        assert tracker.on_read(w1, LOC_A) == (s2,)


class TestUndo:
    def test_undo_pops_latest_write(self, tracker):
        writer, reader = make_thread(1), make_thread(2)
        s1, s2 = FakeSection("a"), FakeSection("b")
        tracker.on_write(writer, LOC_A, (s1,))
        tracker.on_write(writer, LOC_A, (s1, s2))
        tracker.on_undo(writer, LOC_A)
        assert tracker.on_read(reader, LOC_A) == (s1,)
        tracker.on_undo(writer, LOC_A)
        assert tracker.on_read(reader, LOC_A) == ()

    def test_undo_cleans_empty_entries(self, tracker):
        writer = make_thread(1)
        tracker.on_write(writer, LOC_A, (FakeSection("s"),))
        tracker.on_undo(writer, LOC_A)
        assert len(tracker) == 0

    def test_undo_of_unknown_location_is_noop(self, tracker):
        tracker.on_undo(make_thread(1), LOC_A)
        assert len(tracker) == 0

    def test_undo_only_affects_that_thread(self, tracker):
        w1, w2, reader = make_thread(1), make_thread(2), make_thread(3)
        s1, s2 = FakeSection("a"), FakeSection("b")
        tracker.on_write(w1, LOC_A, (s1,))
        tracker.on_write(w2, LOC_A, (s2,))
        tracker.on_undo(w1, LOC_A)
        assert tracker.on_read(reader, LOC_A) == (s2,)


class TestCommit:
    def test_commit_clears_threads_writes(self, tracker):
        writer, reader = make_thread(1), make_thread(2)
        tracker.on_write(writer, LOC_A, (FakeSection("s"),))
        tracker.on_write(writer, LOC_B, (FakeSection("s"),))
        tracker.on_commit(writer, [LOC_A, LOC_B])
        assert tracker.on_read(reader, LOC_A) == ()
        assert tracker.on_read(reader, LOC_B) == ()
        assert len(tracker) == 0

    def test_commit_keeps_other_threads_writes(self, tracker):
        w1, w2, reader = make_thread(1), make_thread(2), make_thread(3)
        s2 = FakeSection("b")
        tracker.on_write(w1, LOC_A, (FakeSection("a"),))
        tracker.on_write(w2, LOC_A, (s2,))
        tracker.on_commit(w1, [LOC_A])
        assert tracker.on_read(reader, LOC_A) == (s2,)

    def test_commit_with_duplicate_locations(self, tracker):
        writer = make_thread(1)
        tracker.on_write(writer, LOC_A, (FakeSection("s"),))
        tracker.on_commit(writer, [LOC_A, LOC_A, LOC_A])
        assert len(tracker) == 0


class TestIntrospection:
    def test_speculative_writers(self, tracker):
        w1, w2 = make_thread(1), make_thread(2)
        tracker.on_write(w1, LOC_A, (FakeSection("a"),))
        tracker.on_write(w2, LOC_A, (FakeSection("b"),))
        assert tracker.speculative_writers(LOC_A) == [1, 2]
        assert tracker.speculative_writers(LOC_B) == []

    def test_clear(self, tracker):
        tracker.on_write(make_thread(1), LOC_A, (FakeSection("s"),))
        tracker.clear()
        assert len(tracker) == 0
