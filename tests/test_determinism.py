"""Determinism regression: the same seed must reproduce a run bit-for-bit.

Two executions of the Figure 5 microbench workload (scaled down) with the
same seed must render byte-identical timelines and report identical
metrics — on the plain rollback VM and with the fault plane enabled (the
injector draws from a derived RNG stream, so faults replay too).
"""

from repro import JVM, VMOptions, render_timeline
from repro.bench.microbench import MicrobenchConfig, setup_microbench_vm
from repro.faults.plane import FaultPlan

CONFIG = MicrobenchConfig(
    high_threads=2,
    low_threads=4,
    iters_high=20,
    iters_low=60,
    sections=6,
    write_pct=50,
    array_size=32,
    pause_mean=5_000,
    seed=0xBEEF,
)


def _run(mode="rollback", **options):
    options.setdefault("trace", True)
    options.setdefault("max_cycles", 50_000_000)
    vm = JVM(VMOptions(mode=mode, seed=CONFIG.seed, **options))
    setup_microbench_vm(vm, CONFIG)
    vm.run()
    return render_timeline(vm), vm.metrics()


class TestDeterminism:
    def test_fig5_workload_replays_identically(self):
        timeline_a, metrics_a = _run()
        timeline_b, metrics_b = _run()
        assert timeline_a == timeline_b
        assert metrics_a == metrics_b
        # sanity: the run exercised the machinery under test
        assert metrics_a["support"]["sections_entered"] > 0

    def test_different_seed_changes_the_run(self):
        """The comparison above is meaningful only if seeds matter."""
        _, metrics_a = _run()
        vm = JVM(
            VMOptions(
                mode="rollback", seed=CONFIG.seed + 1, trace=True,
                max_cycles=50_000_000,
            )
        )
        setup_microbench_vm(vm, CONFIG)
        vm.run()
        assert vm.metrics() != metrics_a

    def test_fault_injected_run_replays_identically(self):
        plan = FaultPlan(
            guest_exception_rate=0.002,
            revocation_storm_rate=0.1,
            handoff_delay_rate=0.1,
            undo_perturb_rate=0.5,
        )
        timeline_a, metrics_a = _run(
            faults=plan, audit_rollbacks=True, raise_on_uncaught=False
        )
        timeline_b, metrics_b = _run(
            faults=plan, audit_rollbacks=True, raise_on_uncaught=False
        )
        assert timeline_a == timeline_b
        assert metrics_a == metrics_b
        assert metrics_a["support"]["invariant_violations"] == 0
