"""Tests for the bounded-preemption schedule explorer.

Covers the ScheduleController semantics (prefix replay, drift fallback,
default continuation, walk budgets), the child-derivation preemption
accounting, and the end-to-end ``explore`` loop: exact schedule counts on
the pinned ``handoff`` scenario, determinism across repeats and worker
counts, and divergence detection with the seeded ``undo-drop`` defect.
"""

from types import SimpleNamespace

import pytest

from repro.bench.parallel import RunEngine
from repro.check.explorer import (
    CheckItem,
    ScheduleController,
    derive_children,
    explore,
    run_check_cell,
)
from repro.util.rng import DeterministicRng


def _threads(*tids: int):
    return [SimpleNamespace(tid=t) for t in tids]


class TestScheduleController:
    def test_default_keeps_last_while_ready(self):
        ctrl = ScheduleController()
        assert ctrl(_threads(3, 5)) == 3          # head of candidates
        assert ctrl(_threads(3, 5)) == 3          # sticks with last
        assert ctrl(_threads(5)) == 5             # last gone: take head
        assert ctrl(_threads(3, 5)) == 5          # sticks with new last
        assert ctrl.preemptions == 0
        assert ctrl.drift == 0
        assert ctrl.schedule == (3, 3, 5, 5)

    def test_prefix_replay_and_preemption_count(self):
        ctrl = ScheduleController(prefix=(5, 3))
        assert ctrl(_threads(3, 5)) == 5
        assert ctrl(_threads(3, 5)) == 3          # switch away from ready 5
        assert ctrl(_threads(3, 5)) == 3          # default: keep last
        assert ctrl.preemptions == 1
        assert ctrl.drift == 0

    def test_prefix_choice_not_a_candidate_counts_drift(self):
        ctrl = ScheduleController(prefix=(9, 5))
        assert ctrl(_threads(3, 5)) == 3          # 9 absent: default, drift
        assert ctrl(_threads(3, 5)) == 5          # 5 present: replayed
        assert ctrl.drift == 1

    def test_trace_records_candidates_and_choice(self):
        ctrl = ScheduleController(prefix=(5,))
        ctrl(_threads(3, 5))
        assert ctrl.trace == [((3, 5), 5)]

    def test_walk_respects_preemption_budget(self):
        """Once the budget is spent, a walk never switches away from a
        still-ready thread, no matter what the dice say."""
        for seed in range(10):
            ctrl = ScheduleController(
                rng=DeterministicRng(seed), bound=1
            )
            for _ in range(50):
                ctrl(_threads(1, 2, 3))
            assert ctrl.preemptions <= 1

    def test_walk_budget_zero_is_fully_sequential(self):
        ctrl = ScheduleController(rng=DeterministicRng(7), bound=0)
        choices = [ctrl(_threads(1, 2)) for _ in range(20)]
        assert ctrl.preemptions == 0
        assert len(set(choices)) == 1             # never leaves the first pick


class TestDeriveChildren:
    def _result(self, candidates, schedule):
        return {"candidates": candidates, "schedule": schedule}

    def test_substitutes_unchosen_candidates(self):
        result = self._result([[1, 2], [1, 2]], [1, 1])
        children = set(derive_children((), result, bound=2))
        assert children == {(2,), (1, 2)}

    def test_respects_prefix(self):
        """Decisions inside the prefix are fixed; no children there."""
        result = self._result([[1, 2], [1, 2]], [2, 2])
        children = set(derive_children((2,), result, bound=2))
        assert children == {(2, 1)}

    def test_bound_prunes_preemptive_children(self):
        # schedule already contains one preemption (1 -> 2 while 1 ready);
        # with bound=1 the child that adds a second preemption is pruned
        result = self._result([[1, 2], [1, 2], [1, 2]], [1, 2, 2])
        children = set(derive_children((1, 2), result, bound=1))
        assert children == set()
        children2 = set(derive_children((1, 2), result, bound=2))
        assert children2 == {(1, 2, 1)}

    def test_first_decision_switch_is_not_a_preemption(self):
        """Choosing a different first thread preempts nobody."""
        result = self._result([[1, 2]], [1])
        assert set(derive_children((), result, bound=0)) == {(2,)}

    def test_nonpreemptive_switch_allowed_at_bound_zero(self):
        # last thread (1) left the candidate set: switching is free
        result = self._result([[1, 2], [2, 3]], [1, 2])
        children = set(derive_children((), result, bound=0))
        assert (2,) in children                   # different first choice
        assert ((1, 3) in children)               # 1 not ready: no preemption


class TestExploreHandoff:
    def test_bound_one_counts_pinned(self):
        report = explore("handoff", 1)
        assert report.schedules == 14
        assert report.walks == 0
        assert report.distinct_schedules == 14
        assert report.distinct_states == 1        # serializability in force
        assert report.ok
        assert report.policy_outcomes["rollback"] == {"completed": 14}
        assert report.policy_outcomes["inheritance"] == {"completed": 14}
        assert report.policy_outcomes["unmodified"] == {"completed": 14}

    def test_bound_two_superset_of_bound_one(self):
        r1 = explore("handoff", 1)
        r2 = explore("handoff", 2)
        assert r2.schedules > r1.schedules
        assert r2.ok and r2.distinct_states == 1

    def test_deterministic_across_repeats_and_jobs(self):
        serial = explore("handoff", 1, engine=RunEngine(jobs=1))
        again = explore("handoff", 1, engine=RunEngine(jobs=1))
        fanned = explore("handoff", 1, engine=RunEngine(jobs=2))
        for other in (again, fanned):
            assert other.schedules == serial.schedules
            assert other.distinct_states == serial.distinct_states
            assert other.policy_outcomes == serial.policy_outcomes
            assert other.divergences == serial.divergences

    def test_injected_bug_is_caught(self):
        report = explore("handoff", 1, inject="undo-drop")
        assert not report.ok
        first = report.divergences[0]
        assert first["problems"]
        # the defect corrupts rollback state: digests split along policy
        assert (
            first["digests"]["inheritance"]
            == first["digests"]["unmodified"]
        )

    def test_unknown_scenario_fails_fast(self):
        with pytest.raises(ValueError, match="unknown check scenario"):
            explore("no-such", 1)

    def test_walks_are_deterministic(self):
        a = explore("handoff", 1, walks=4)
        b = explore("handoff", 1, walks=4)
        assert a.walks == b.walks == 4
        assert a.policy_outcomes == b.policy_outcomes
        assert a.distinct_states == b.distinct_states == 1


class TestCheckCell:
    def test_projection_replays_reference_schedule(self):
        """A cell's non-reference policies replay the reference choices;
        on the quiet default schedule there is no drift at all."""
        result = run_check_cell(CheckItem("handoff"))
        assert result["drift"] == {
            "rollback": 0, "inheritance": 0, "unmodified": 0
        }
        assert result["preemptions"] == 0
        assert not result["problems"]

    def test_preemptive_prefix_triggers_revocation_yet_agrees(self):
        """Prefix (0, 1) preempts the low thread mid-section: rollback
        revokes, blocking policies wait — same final state either way."""
        result = run_check_cell(CheckItem("handoff", prefix=(0, 1)))
        assert result["preemptions"] == 1
        assert not result["problems"]
        assert len(set(result["digests"].values())) == 1
