"""Tests for report rendering, CSV/JSON export, and the bench CLI."""

import csv
import json

import pytest

from repro.bench.figures import FigurePanel, run_panel
from repro.bench.report import (
    panel_json,
    panel_rows,
    render_panel,
    render_series,
    write_csv,
)


@pytest.fixture(scope="module")
def tiny_panel():
    return run_panel(
        FigurePanel(5, "a"),
        repetitions=1,
        write_ratios=(0, 100),
        seed=77,
    )


class TestRenderers:
    def test_render_panel_structure(self, tiny_panel):
        out = render_panel(tiny_panel)
        assert "Figure 5(a)" in out
        assert "MODIFIED" in out and "UNMODIFIED" in out
        assert "mean speedup" in out

    def test_render_panel_without_ci(self, tiny_panel):
        out = render_panel(tiny_panel, with_ci=False)
        assert "±" not in out

    def test_render_series(self):
        out = render_series(
            [0, 50, 100],
            {"a": [1.0, 1.1, 1.2], "b": [1.0, 0.9, 0.8]},
            title="demo",
        )
        assert "demo" in out and "write%" in out


class TestExport:
    def test_panel_rows_schema(self, tiny_panel):
        rows = panel_rows(tiny_panel)
        assert len(rows) == 2
        first = rows[0]
        assert first["figure"] == 5 and first["panel"] == "a"
        assert first["unmodified_high_elapsed"] == pytest.approx(1.0)
        for key in (
            "modified_high_elapsed", "modified_overall_elapsed",
            "unmodified_overall_elapsed", "modified_high_elapsed_ci90",
        ):
            assert key in first

    def test_write_csv_roundtrip(self, tiny_panel, tmp_path):
        path = tmp_path / "panel.csv"
        write_csv(tiny_panel, path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert rows[0]["write_pct"] == "0"
        assert float(rows[0]["unmodified_high_elapsed"]) == pytest.approx(1.0)

    def test_panel_json(self, tiny_panel):
        doc = json.loads(panel_json(tiny_panel))
        assert doc["figure"] == 5
        assert doc["metric"] == "high_elapsed"
        assert len(doc["rows"]) == 2
        assert doc["mean_speedup"] > 0


class TestCli:
    def test_panel_argument_validation(self):
        from repro.bench.__main__ import _parse_panel

        panel = _parse_panel("6b")
        assert panel.figure == 6 and panel.panel == "b"
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_panel("9a")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_panel("5d")

    def test_cli_runs_one_panel(self, tmp_path, capsys, monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.3")
        csv_path = tmp_path / "out.csv"
        rc = main(["5a", "--reps", "1", "--csv", str(csv_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 5(a)" in out
        assert csv_path.exists()

    def test_cli_json_mode(self, capsys, monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.3")
        rc = main(["5b", "--reps", "1", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["panel"] == "b"
