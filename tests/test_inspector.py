"""Tests for the slice-stepping Inspector."""

import pytest

from repro import Asm, VMStateError
from repro.vm.inspector import Inspector

from conftest import build_class, make_vm


def counter_vm(mode="rollback"):
    run = Asm("run", argc=2)  # (iters, delay)
    run.load(1).sleep()
    run.getstatic("T", "lock")
    with run.sync():
        i = run.local()
        run.for_range(i, lambda: run.load(0), lambda: (
            run.getstatic("T", "counter"), run.const(1), run.add(),
            run.putstatic("T", "counter"),
        ))
    run.ret()
    cls = build_class("T", ["lock:ref", "counter:int"], [run])
    vm = make_vm(mode, seed=3)
    vm.load(cls)
    vm.set_static("T", "lock", vm.new_object("T"))
    vm.spawn("T", "run", args=[2_000, 1], priority=1, name="low")
    vm.spawn("T", "run", args=[60, 6_000], priority=10, name="high")
    return vm


class TestStepping:
    def test_step_slices_progress_virtual_time(self):
        vm = counter_vm()
        insp = Inspector(vm)
        before = vm.clock.now
        steps = insp.step_slice(3)
        assert len(steps) == 3
        assert vm.clock.now > before
        assert all(reason for _, reason in steps)

    def test_finish_completes_the_run(self):
        vm = counter_vm()
        insp = Inspector(vm)
        insp.step_slice(2)
        insp.finish()
        assert insp.finished
        assert vm.all_terminated()
        assert vm.get_static("T", "counter") == 2_060

    def test_stepping_equals_plain_run(self):
        """Slice-stepping must be observationally identical to vm.run()."""
        stepped = counter_vm()
        Inspector(stepped).finish()
        plain = counter_vm()
        plain.run()
        assert stepped.clock.now == plain.clock.now
        assert (
            stepped.metrics()["support"] == plain.metrics()["support"]
        )

    def test_run_until_predicate(self):
        vm = counter_vm()
        insp = Inspector(vm)
        ok = insp.run_until(lambda v: v.clock.now > 5_000)
        assert ok and vm.clock.now > 5_000

    def test_run_until_event_rollback(self):
        vm = counter_vm()
        insp = Inspector(vm)
        assert insp.run_until_event("rollback_begin")
        low = vm.thread_named("low")
        assert low.revocations >= 0  # rollback is in flight or just done
        assert not insp.finished
        insp.finish()
        assert vm.metrics()["support"]["revocations_completed"] >= 1

    def test_run_until_event_needs_tracing(self):
        vm = counter_vm()
        vm.tracer.enabled = False
        insp = Inspector(vm)
        with pytest.raises(VMStateError):
            insp.run_until_event("spawn")

    def test_run_until_never_satisfied_returns_false(self):
        vm = counter_vm()
        insp = Inspector(vm)
        assert insp.run_until(lambda v: False) is False
        assert insp.finished

    def test_inspector_rejects_finished_vm(self):
        vm = counter_vm()
        vm.run()
        with pytest.raises(VMStateError):
            Inspector(vm)

    def test_uncaught_exception_surfaces_on_step(self):
        from repro import UncaughtGuestException

        boom = Asm("boom", argc=0)
        boom.throw_new("Error")
        cls = build_class("B", [], [boom])
        vm = make_vm()
        vm.load(cls)
        vm.spawn("B", "boom", name="b")
        insp = Inspector(vm)
        with pytest.raises(UncaughtGuestException):
            insp.finish()


class TestInspection:
    def test_stack_trace_shows_frames_and_sections(self):
        vm = counter_vm()
        insp = Inspector(vm)
        insp.run_until(
            lambda v: bool(v.thread_named("low").sections)
        )
        text = insp.stack_trace(vm.thread_named("low"))
        assert "low" in text
        assert "T.run" in text
        assert "sections:" in text

    def test_disassemble_around_marks_pc(self):
        vm = counter_vm()
        insp = Inspector(vm)
        insp.step_slice(1)
        text = insp.disassemble_around(vm.thread_named("low"))
        assert "->" in text

    def test_locals_and_stack_snapshots(self):
        vm = counter_vm()
        insp = Inspector(vm)
        insp.run_until(
            lambda v: bool(v.thread_named("low").sections)
        )
        low = vm.thread_named("low")
        locals_ = insp.locals_of(low)
        assert locals_[0] == 2_000  # the iters argument
        assert isinstance(insp.operand_stack_of(low), list)

    def test_threads_summary(self):
        vm = counter_vm()
        insp = Inspector(vm)
        insp.step_slice(2)
        text = insp.threads_summary()
        assert "low" in text and "high" in text

    def test_disassemble_method(self):
        vm = counter_vm()
        insp = Inspector(vm)
        text = insp.disassemble_method("T", "run")
        assert "monitorenter" in text
        assert "savestate" in text  # the transformer ran (rollback mode)

    def test_disassemble_decoded(self):
        vm = counter_vm()
        insp = Inspector(vm)
        text = insp.disassemble_decoded("T", "run")
        assert "T.run" in text
        assert "block [" in text        # at least one fused block
        assert "def _b" in text         # generated block source included
