"""End-to-end counterexample round-trip (the regression fixture).

Drives the real CLI: explore the ``handoff`` scenario with the seeded
``undo-drop`` defect, let ddmin minimize the divergent schedule, write the
counterexample JSON, then replay it from disk and require the divergence
to reproduce.  Also pins the CLI's determinism contract (stdout identical
across worker counts) and its exit statuses.
"""

import json

import pytest

from repro.check.__main__ import main
from repro.check.minimize import ddmin
from repro.check.oracle import (
    COUNTEREXAMPLE_FORMAT,
    replay_counterexample,
)


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep the engine's result cache out of the repo tree."""
    monkeypatch.setenv(
        "REPRO_BENCH_CACHE_DIR", str(tmp_path / "bench-cache")
    )
    monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)


class TestDdmin:
    def test_minimizes_to_the_relevant_suffix(self):
        # predicate: "contains both a 7 and a 9"
        test = lambda xs: 7 in xs and 9 in xs
        assert sorted(ddmin(test, [1, 2, 7, 3, 9, 4])) == [7, 9]

    def test_keeps_order(self):
        test = lambda xs: xs and xs[0] == 5
        assert ddmin(test, [5, 1, 2, 3]) == [5]

    def test_empty_result_when_predicate_is_vacuous(self):
        assert ddmin(lambda xs: True, [1, 2, 3]) == []

    def test_rejects_non_reproducing_input(self):
        with pytest.raises(ValueError, match="does not satisfy"):
            ddmin(lambda xs: False, [1, 2])


class TestCounterexampleRoundtrip:
    def _explore(self, tmp_path, capsys):
        out = tmp_path / "ce.json"
        rc = main([
            "--scenario", "handoff", "--bound", "1",
            "--inject-bug", "undo-drop", "--out", str(out),
        ])
        captured = capsys.readouterr()
        return rc, out, captured

    def test_explore_minimize_serialize_replay(self, tmp_path, capsys):
        rc, out, captured = self._explore(tmp_path, capsys)
        assert rc == 1
        assert "FAIL" in captured.out
        assert "minimized" in captured.out

        payload = json.loads(out.read_text())
        assert payload["format"] == COUNTEREXAMPLE_FORMAT
        assert payload["scenario"] == "handoff"
        assert payload["inject"] == "undo-drop"
        assert payload["problems"]
        minimized = payload["minimized_schedule"]
        assert 0 < len(minimized) <= len(payload["schedule"])

        # library-level replay reproduces the divergence
        verdict = replay_counterexample(payload)
        assert verdict["reproduced"]

        # CLI-level replay agrees and exits 0
        rc2 = main(["--replay", str(out)])
        replay_out = capsys.readouterr().out
        assert rc2 == 0
        assert "divergence reproduced" in replay_out
        assert str(minimized) in replay_out

    def test_minimized_schedule_is_locally_minimal(
        self, tmp_path, capsys
    ):
        """Dropping any single choice from the minimized schedule must
        lose the divergence (ddmin's 1-minimality guarantee)."""
        _, out, _ = self._explore(tmp_path, capsys)
        payload = json.loads(out.read_text())
        minimized = payload["minimized_schedule"]
        for k in range(len(minimized)):
            probe = dict(payload)
            probe["minimized_schedule"] = (
                minimized[:k] + minimized[k + 1:]
            )
            assert not replay_counterexample(probe)["reproduced"], (
                f"choice {k} of {minimized} is redundant"
            )

    def test_replay_without_the_bug_does_not_reproduce(
        self, tmp_path, capsys
    ):
        """The divergence lives in the injected defect, not the schedule:
        replaying the same schedule on the healthy VM is clean."""
        _, out, _ = self._explore(tmp_path, capsys)
        payload = json.loads(out.read_text())
        payload["inject"] = None
        assert not replay_counterexample(payload)["reproduced"]


class TestCliContract:
    def test_clean_exploration_exits_zero(self, capsys):
        rc = main(["--scenario", "handoff", "--bound", "1"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "OK: all explored schedules are policy-equivalent" in \
            captured.out
        assert "divergences: 0" in captured.out

    def test_stdout_identical_across_job_counts(self, capsys):
        main(["--scenario", "handoff", "--bound", "1", "--jobs", "1"])
        serial = capsys.readouterr().out
        main(["--scenario", "handoff", "--bound", "1", "--jobs", "2"])
        fanned = capsys.readouterr().out
        assert serial == fanned


class TestStrategyCliContract:
    """The ``--strategy`` surface: every strategy reports its search
    effort in one deterministic ``strategy=... explored=... pruned=...``
    line — on stdout as ``reduction:`` and on stderr as ``repro.check``
    (ahead of the timing-dependent engine stats) — byte-identical for
    any ``REPRO_BENCH_JOBS`` value."""

    @staticmethod
    def _run(monkeypatch, capsys, jobs, *argv):
        monkeypatch.setenv("REPRO_BENCH_JOBS", jobs)
        rc = main(list(argv))
        captured = capsys.readouterr()
        return rc, captured.out, captured.err

    def test_dpor_reduction_line_stable_across_worker_counts(
        self, monkeypatch, capsys
    ):
        argv = ("--scenario", "mini-handoff", "--strategy", "dpor")
        rc1, out1, err1 = self._run(monkeypatch, capsys, "1", *argv)
        rc4, out4, err4 = self._run(monkeypatch, capsys, "4", *argv)
        assert rc1 == rc4 == 0
        assert out1 == out4                       # whole stdout is pure
        assert "reduction: strategy=dpor explored=4 pruned=0 " \
            "transitions=26 restores=3" in out1
        # stderr leads with the same deterministic line in both runs
        line1, line4 = err1.splitlines()[0], err4.splitlines()[0]
        assert line1 == line4 == (
            "repro.check strategy=dpor explored=4 pruned=0 "
            "transitions=26 restores=3"
        )

    def test_header_names_the_strategy_and_drops_the_bound(self, capsys):
        main(["--scenario", "mini-handoff", "--strategy", "dpor"])
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        assert "strategy=dpor" in header
        assert "bound=" not in header             # dpor is unbounded

    def test_exhaustive_and_random_report_their_strategies(self, capsys):
        main(["--scenario", "mini-handoff", "--bound", "1"])
        exhaustive = capsys.readouterr().out
        assert "strategy=exhaustive" in exhaustive.splitlines()[0]
        assert "reduction: strategy=exhaustive explored=" in exhaustive
        main(["--scenario", "mini-handoff", "--strategy", "random",
              "--walks", "6"])
        random = capsys.readouterr().out
        assert "strategy=random" in random.splitlines()[0]
        assert "reduction: strategy=random explored=6" in random
        assert "0 searched + 6 walks" in random

    def test_dpor_counterexample_roundtrips_through_replay(
        self, tmp_path, capsys
    ):
        out = tmp_path / "ce-dpor.json"
        rc = main([
            "--scenario", "mini-handoff", "--strategy", "dpor",
            "--inject-bug", "undo-drop", "--out", str(out),
        ])
        explored = capsys.readouterr().out
        assert rc == 1
        assert "FAIL: 1 divergent schedule(s)" in explored

        payload = json.loads(out.read_text())
        assert payload["scenario"] == "mini-handoff"
        assert replay_counterexample(payload)["reproduced"]
        rc2 = main(["--replay", str(out)])
        assert rc2 == 0
        assert "divergence reproduced" in capsys.readouterr().out

    def test_list_names_all_scenarios(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("handoff", "barge", "racy-yield", "lock-order"):
            assert name in out

    def test_lockset_cli_flags_the_racy_scenario(self, capsys):
        rc = main(["--lockset", "racy-yield"])
        captured = capsys.readouterr()
        assert rc == 1
        report = json.loads(captured.out)
        assert report["races"]

    def test_lockset_cli_clean_on_fig5(self, capsys):
        rc = main(["--lockset", "fig5"])
        captured = capsys.readouterr()
        assert rc == 0
        report = json.loads(captured.out)
        assert report["races"] == []
        assert report["lock_order_inversions"] == []
