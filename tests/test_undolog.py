"""Unit tests for the sequential undo buffer (paper §3.1.2)."""

import pytest

from repro.core.undolog import UndoLog
from repro.vm.classfile import ClassDef, FieldDef
from repro.vm.heap import Heap, location_of


@pytest.fixture
def heap():
    h = Heap()
    h.register_class(ClassDef("C", fields=[
        FieldDef("x", "int"),
        FieldDef("s", "int", is_static=True),
    ]))
    return h


@pytest.fixture
def log(heap):
    return UndoLog(heap)


class TestAppendAndMarks:
    def test_empty_log(self, log):
        assert len(log) == 0
        assert log.mark() == 0

    def test_marks_advance_with_appends(self, log, heap):
        obj = heap.allocate(heap.class_objects["C"].classdef)
        log.append(obj, "x", 0)
        assert log.mark() == 1
        log.append(obj, "x", 1)
        assert log.mark() == 2


class TestRollback:
    def test_object_field_restored(self, log, heap):
        cls = ClassDef("D", fields=[FieldDef("x", "int")])
        obj = heap.allocate(cls)
        old = obj.put("x", 10)
        log.append(obj, "x", old)
        old = obj.put("x", 20)
        log.append(obj, "x", old)
        assert log.rollback_to(0) == 2
        assert obj.get("x") == 0
        assert len(log) == 0

    def test_array_restored(self, log, heap):
        arr = heap.allocate_array(3)
        log.append(arr, 1, arr.put(1, 5))
        log.append(arr, 2, arr.put(2, 6))
        log.rollback_to(0)
        assert arr.snapshot() == [0, 0, 0]

    def test_static_restored(self, log, heap):
        key = ("C", "s")
        log.append(key, "s", heap.put_static(key, 9))
        log.rollback_to(0)
        assert heap.get_static(key) == 0

    def test_partial_rollback_to_mark(self, log, heap):
        cls = ClassDef("D", fields=[FieldDef("x", "int")])
        obj = heap.allocate(cls)
        log.append(obj, "x", obj.put("x", 1))
        mark = log.mark()
        log.append(obj, "x", obj.put("x", 2))
        log.append(obj, "x", obj.put("x", 3))
        assert log.rollback_to(mark) == 2
        assert obj.get("x") == 1       # back to the marked state
        assert len(log) == 1           # pre-mark entry survives

    def test_reverse_order_matters(self, log, heap):
        """Processing in reverse restores the oldest value, not an
        intermediate one — the paper's 'processed in reverse'."""
        cls = ClassDef("D", fields=[FieldDef("x", "int")])
        obj = heap.allocate(cls)
        obj.put("x", 100)  # unlogged baseline
        log.append(obj, "x", obj.put("x", 1))
        log.append(obj, "x", obj.put("x", 2))
        log.append(obj, "x", obj.put("x", 3))
        log.rollback_to(0)
        assert obj.get("x") == 100

    def test_on_undo_callback_sees_locations_newest_first(self, log, heap):
        arr = heap.allocate_array(4)
        for i in range(3):
            log.append(arr, i, arr.put(i, i + 1))
        seen = []
        log.rollback_to(0, on_undo=seen.append)
        assert seen == [
            location_of(arr, 2), location_of(arr, 1), location_of(arr, 0),
        ]

    def test_bad_mark_rejected(self, log):
        with pytest.raises(ValueError):
            log.rollback_to(5)
        with pytest.raises(ValueError):
            log.rollback_to(-1)


class TestTruncate:
    def test_commit_discards_without_restoring(self, log, heap):
        arr = heap.allocate_array(2)
        log.append(arr, 0, arr.put(0, 7))
        assert log.truncate(0) == 1
        assert arr.get(0) == 7  # value kept
        assert len(log) == 0

    def test_truncate_to_mark(self, log, heap):
        arr = heap.allocate_array(2)
        log.append(arr, 0, arr.put(0, 7))
        mark = log.mark()
        log.append(arr, 1, arr.put(1, 8))
        assert log.truncate(mark) == 1
        assert len(log) == 1

    def test_truncate_bad_mark(self, log):
        with pytest.raises(ValueError):
            log.truncate(3)


class TestLocations:
    def test_locations_since(self, log, heap):
        arr = heap.allocate_array(2)
        cls = ClassDef("D", fields=[FieldDef("x", "int")])
        obj = heap.allocate(cls)
        log.append(arr, 0, 0)
        mark = log.mark()
        log.append(obj, "x", 0)
        log.append(("C", "s"), "s", 0)
        locs = list(log.locations_since(mark))
        assert locs == [
            location_of(obj, "x"), location_of(("C", "s"), "s"),
        ]

    def test_peek(self, log, heap):
        arr = heap.allocate_array(1)
        log.append(arr, 0, 42)
        assert log.peek(0) == (arr, 0, 42)
