"""Cycle profiler: exactness by construction.

The profiler is a :class:`VirtualClock` listener, so every advanced
cycle lands in exactly one (track, category) cell — the grand total
*must* equal the final virtual clock with zero residue, in every policy
mode, under either interpreter.  Per-method totals come from the
interpreters' flush points, which the parity suite already pins as
identical, so the per-track guest total must equal the per-method sum.
"""

from __future__ import annotations

import itertools

import pytest

from repro.bench.workloads import (
    build_deadlock_pair,
    build_medium_inversion,
    build_philosophers,
)
from repro.core import sections
from repro.vm.assembler import Asm
from repro.vm.vmcore import JVM, VMOptions

MODES = ("unmodified", "rollback", "inheritance", "ceiling")


def _run(build, mode="rollback", interp="fast", **overrides):
    Asm._sync_counter = 0
    sections._section_ids = itertools.count(1)
    opts = dict(mode=mode, interp=interp, trace=True, profile=True,
                seed=7, max_cycles=50_000_000)
    opts.update(overrides)
    vm = JVM(VMOptions(**opts))
    build().install(vm)
    try:
        vm.run()
    except Exception:
        pass
    return vm


def _medium():
    return build_medium_inversion(
        medium_threads=2, low_section_iters=300,
        medium_work_iters=500, high_section_iters=60,
    )


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("interp", ("fast", "reference"))
def test_total_equals_final_clock_exactly(mode, interp):
    vm = _run(_medium, mode=mode, interp=interp)
    assert vm.profiler.total_cycles() == vm.clock.now


@pytest.mark.parametrize("mode", MODES)
def test_guest_track_equals_per_method_sum(mode):
    vm = _run(_medium, mode=mode)
    per_method: dict = {}
    for (track, _method), (cycles, _insns) in vm.profiler.methods.items():
        per_method[track] = per_method.get(track, 0) + cycles
    for track, cats in vm.profiler.tracks.items():
        if track == "(vm)":
            continue
        assert cats.get("guest", 0) == per_method.get(track, 0), track


def test_rollback_cycles_attributed():
    vm = _run(lambda: build_deadlock_pair(hold_cycles=800, work=20))
    rollback = sum(
        cats.get("rollback", 0) for cats in vm.profiler.tracks.values()
    )
    assert rollback > 0
    assert rollback == vm.metrics()["support"]["rollback_cycles"]


def test_mechanism_split_present_under_rollback():
    vm = _run(_medium, mode="rollback")
    rows = vm.profiler.method_table()
    assert rows
    top = rows[0]
    # rollback mode runs write barriers + undo logging on guest stores
    assert sum(r["barrier"] for r in rows) > 0
    assert sum(r["undo_log"] for r in rows) > 0
    for r in rows:
        assert r["work"] >= 0
        # in-flush mechanisms never exceed the method's flushed cycles
        inflush = (r["barrier"] + r["undo_log"] + r["monitor"]
                   + r["native"])
        assert inflush <= r["cycles"]
    assert top["cycles"] >= rows[-1]["cycles"]


def test_switch_cycles_match_context_switch_cost():
    vm = _run(_medium, mode="unmodified")
    switch = sum(
        cats.get("switch", 0) for cats in vm.profiler.tracks.values()
    )
    m = vm.metrics()
    assert switch == m["context_switches"] * vm.cost_model.context_switch


def test_profiler_absent_by_default():
    Asm._sync_counter = 0
    sections._section_ids = itertools.count(1)
    vm = JVM(VMOptions(mode="rollback", trace=True))
    assert vm.profiler is None
    build_deadlock_pair(hold_cycles=800, work=20).install(vm)
    vm.run()  # no profiling machinery in the way


def test_profile_identical_across_interpreters():
    a = _run(_medium, interp="fast")
    b = _run(_medium, interp="reference")
    assert a.profiler.tracks == b.profiler.tracks
    assert a.profiler.methods == b.profiler.methods
    assert a.profiler.stacks == b.profiler.stacks
    assert a.profiler.mech == b.profiler.mech


def test_folded_stacks_cover_guest_cycles():
    vm = _run(lambda: build_philosophers(
        3, rounds=3, think_cycles=300, eat_iters=15
    ))
    by_track: dict = {}
    for (track, _stack), cycles in vm.profiler.stacks.items():
        by_track[track] = by_track.get(track, 0) + cycles
    for track, cats in vm.profiler.tracks.items():
        if track == "(vm)":
            continue
        assert by_track.get(track, 0) == cats.get("guest", 0)


def test_profiling_does_not_change_the_run():
    plain = _run(_medium, profile=False)
    profiled = _run(_medium, profile=True)
    assert plain.clock.now == profiled.clock.now
    assert plain.clock.events == profiled.clock.events
    assert [str(e) for e in plain.tracer.events] == [
        str(e) for e in profiled.tracer.events
    ]
    pm, qm = plain.metrics(), profiled.metrics()
    assert pm["support"] == qm["support"]
