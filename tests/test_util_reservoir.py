"""Bounded latency reservoir: exactness, boundedness, determinism.

The load-bearing property: below capacity the reservoir's summary is
bit-identical to sorting the full sample (the unbounded
``latency_summary`` path), and above capacity the exact scalars
(count/max/mean) never drift while memory stays pinned at the bin
budget.
"""

from __future__ import annotations

import pytest

from repro.server.report import latency_summary
from repro.util.reservoir import DEFAULT_CAPACITY, LatencyReservoir
from repro.util.rng import DeterministicRng
from repro.util.stats import nearest_rank


def _stream(n: int, spread: int, seed: int = 11) -> list[int]:
    rng = DeterministicRng(seed)
    return [rng.randint(40, 40 + spread - 1) for _ in range(n)]


def _summarize_unbounded(samples: list[int]) -> dict:
    return latency_summary(list(samples))


class TestExactRegime:
    @pytest.mark.parametrize("n,spread", [
        (1, 5), (7, 3), (100, 1000), (5000, 2000), (4096, 10 ** 9),
    ])
    def test_parity_with_unbounded_summary(self, n, spread):
        samples = _stream(n, spread)
        res = LatencyReservoir()
        res.extend(samples)
        assert res.exact
        assert res.summary() == _summarize_unbounded(samples)

    def test_exact_above_capacity_when_values_repeat(self):
        # 10^5 samples over 500 distinct values: the operating regime of
        # a quantized-cycle soak — far more requests than bins, exact
        samples = _stream(100_000, 500)
        res = LatencyReservoir(capacity=512)
        res.extend(samples)
        assert res.exact
        assert res.bins <= 512
        assert res.summary() == _summarize_unbounded(samples)

    def test_percentile_mirrors_nearest_rank(self):
        samples = _stream(999, 750)
        res = LatencyReservoir()
        res.extend(samples)
        s = sorted(samples)
        for numer, denom in ((1, 100), (50, 100), (99, 100),
                             (999, 1000), (1, 1)):
            assert res.percentile(numer, denom) == nearest_rank(
                s, numer, denom
            )

    def test_empty_sentinel_matches_unbounded(self):
        assert LatencyReservoir().summary() == latency_summary([])


class TestBoundedRegime:
    def test_memory_stays_flat_and_scalars_exact(self):
        samples = _stream(20_000, 10 ** 9, seed=3)
        res = LatencyReservoir(capacity=64)
        res.extend(samples)
        assert res.bins <= 64
        assert not res.exact
        assert res.count == len(samples)
        assert res.total == sum(samples)
        summary = res.summary()
        assert summary["count"] == len(samples)
        assert summary["max"] == max(samples)
        assert summary["mean"] == sum(samples) // len(samples)

    def test_percentiles_are_observed_values(self):
        samples = _stream(5_000, 10 ** 9, seed=5)
        observed = set(samples)
        res = LatencyReservoir(capacity=32)
        res.extend(samples)
        for numer, denom in ((50, 100), (99, 100), (999, 1000)):
            assert res.percentile(numer, denom) in observed

    def test_percentile_error_bounded_by_merges(self):
        # merging collapses nearest neighbors, so p50 stays within the
        # sample's range and ordered against p99/p999
        samples = _stream(3_000, 10 ** 6, seed=9)
        res = LatencyReservoir(capacity=128)
        res.extend(samples)
        s = res.summary()
        assert min(samples) <= s["p50"] <= s["p99"] <= s["p999"] \
            <= s["max"] == max(samples)


class TestDeterminism:
    def test_same_sequence_same_summary(self):
        samples = _stream(10_000, 10 ** 7, seed=21)
        a = LatencyReservoir(capacity=100)
        b = LatencyReservoir(capacity=100)
        a.extend(samples)
        b.extend(samples)
        assert a.summary() == b.summary()
        assert a.expand() == b.expand()

    def test_integer_only(self):
        res = LatencyReservoir()
        res.extend(_stream(1000, 100))
        summary = res.summary()
        assert all(
            isinstance(v, int) for v in summary.values()
        )


class TestValidation:
    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            LatencyReservoir(capacity=1)

    def test_percentile_range(self):
        res = LatencyReservoir()
        res.add(5)
        with pytest.raises(ValueError):
            res.percentile(0, 100)
        with pytest.raises(ValueError):
            res.percentile(101, 100)

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            LatencyReservoir().percentile(50, 100)


class TestServerReportIntegration:
    def test_report_latency_matches_unbounded_path_on_real_run(self):
        """Pin the satellite: a real (small) server run reports exactly
        what the unbounded sort-everything path would."""
        from test_server_workload import _run, _small

        from repro.server.report import _tier_latencies, _tier_reservoir

        config = _small()
        vm, _ = _run(config)
        for ti in range(len(config.tiers)):
            samples = _tier_latencies(vm, ti)
            reservoir = _tier_reservoir(vm, ti)
            assert reservoir.summary() == latency_summary(samples)
            assert reservoir.exact
