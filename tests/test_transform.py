"""Transformer tests (paper §3.1.1): sync-method wrapping, rollback-scope
injection, write-barrier insertion, relocation, and barrier elision."""

import pytest

from repro import Asm, ClassDef, FieldDef, TransformError
from repro.core.transform import (
    IMPL_SUFFIX,
    elide_barriers,
    inject_rollback_scopes,
    insert_instructions,
    insert_write_barriers,
    transform_class,
    wrap_synchronized_methods,
)
from repro.vm import bytecode as bc
from repro.vm.bytecode import Instruction
from repro.vm.classfile import ROLLBACK_TYPE

from conftest import build_class, make_vm


def sync_counter_method(name="run", *, count=3):
    a = Asm(name, argc=0)
    a.getstatic("C", "lock")
    with a.sync():
        i = a.local()
        a.for_range(i, lambda: a.const(count), lambda: (
            a.getstatic("C", "value"), a.const(1), a.add(),
            a.putstatic("C", "value"),
        ))
    a.ret()
    return a


def counter_class(*methods):
    return ClassDef("C", fields=[
        FieldDef("lock", "ref", is_static=True),
        FieldDef("value", "int", is_static=True),
    ], methods=[m.build() for m in methods])


class TestInsertInstructions:
    def _method(self):
        a = Asm("m", argc=0)
        top = a.label()
        end = a.label()
        a.place(top)              # 0
        a.const(1)                # 0: const
        a.if_(end)                # 1: if -> end
        a.goto(top)               # 2: goto -> top
        a.place(end)
        a.ret()                   # 3
        return a.build()

    def test_branch_targets_relocated(self):
        m = self._method()
        insert_instructions(m, 1, [Instruction(bc.NOP), Instruction(bc.NOP)])
        # if (now at pc 3) targets ret (was 3, now 5); goto targets 0
        assert m.code[3].op == bc.IF and m.code[3].a == 5
        assert m.code[4].op == bc.GOTO and m.code[4].a == 0

    def test_branch_to_insertion_point_lands_on_inserted_code(self):
        m = self._method()
        # goto targets pc 0; insert at 0 -> the goto must now target the
        # inserted instruction (SAVESTATE-before-monitorenter semantics)
        insert_instructions(m, 0, [Instruction(bc.NOP)])
        goto = next(ins for ins in m.code if ins.op == bc.GOTO)
        assert goto.a == 0

    def test_exception_table_relocated(self):
        a = Asm("m", argc=0)
        a.try_(
            body=lambda: a.const(1).pop(),
            catches=[("E", lambda: a.pop())],
        )
        a.ret()
        m = a.build()
        entry_before = m.exc_table[0]
        # Insert strictly before the range: everything shifts.
        insert_instructions(m, entry_before.start, [Instruction(bc.NOP)] * 3)
        entry_after = m.exc_table[0]
        # A boundary pc equal to the insertion point stays (the inserted
        # code joins the range); interior and later pcs shift.
        assert entry_after.start == entry_before.start
        assert entry_after.end == entry_before.end + 3
        assert entry_after.handler == entry_before.handler + 3

    def test_empty_insert_is_noop(self):
        m = self._method()
        code_before = list(m.code)
        insert_instructions(m, 1, [])
        assert m.code == code_before

    def test_bad_insertion_point_rejected(self):
        with pytest.raises(TransformError):
            insert_instructions(self._method(), 99, [Instruction(bc.NOP)])


class TestWrapSynchronizedMethods:
    def _sync_method(self, *, is_static=True, returns_value=False):
        a = Asm(
            "work",
            argc=0 if is_static else 1,
            is_static=is_static,
            synchronized=True,
            returns_value=returns_value,
        )
        if returns_value:
            a.const(7)
        a.ret()
        return a.build()

    def test_wrapper_replaces_original(self):
        cls = ClassDef("C", methods=[self._sync_method()])
        assert wrap_synchronized_methods(cls) == 1
        assert not cls.method("work").synchronized
        impl = cls.method("work" + IMPL_SUFFIX)
        assert impl.force_inline
        assert not impl.synchronized

    def test_static_wrapper_locks_class_object(self):
        cls = ClassDef("C", methods=[self._sync_method(is_static=True)])
        wrap_synchronized_methods(cls)
        wrapper = cls.method("work")
        assert wrapper.code[0].op == bc.CLASSREF
        assert wrapper.code[0].a == "C"

    def test_instance_wrapper_locks_receiver(self):
        cls = ClassDef("C", methods=[self._sync_method(is_static=False)])
        wrap_synchronized_methods(cls)
        wrapper = cls.method("work")
        assert wrapper.code[0].op == bc.LOAD and wrapper.code[0].a == 0

    def test_wrapper_signature_matches(self):
        cls = ClassDef("C", methods=[self._sync_method(returns_value=True)])
        wrap_synchronized_methods(cls)
        wrapper = cls.method("work")
        impl = cls.method("work" + IMPL_SUFFIX)
        assert wrapper.argc == impl.argc
        assert wrapper.returns_value and impl.returns_value

    def test_wrapper_executes_correctly(self):
        """End to end: a synchronized method on the modified VM."""
        work = Asm("work", argc=0, synchronized=True, returns_value=True)
        work.getstatic("C", "value").const(1).add()
        work.dup().putstatic("C", "value")
        work.ret()

        main = Asm("main", argc=0)
        i = main.local()
        main.for_range(i, lambda: main.const(5), lambda:
                       main.invoke("C", "work", 0).pop())
        main.ret()

        cls = ClassDef("C", fields=[
            FieldDef("value", "int", is_static=True),
        ], methods=[work.build(), main.build()])
        vm = make_vm("rollback")
        vm.load(cls)
        vm.spawn("C", "main", name="m")
        vm.run()
        assert vm.get_static("C", "value") == 5

    def test_synchronized_methods_exclude_each_other(self):
        """Two threads in the same synchronized *method* must serialize."""
        work = Asm("work", argc=0, synchronized=True)
        i = work.local()
        work.for_range(i, lambda: work.const(1_500), lambda: (
            work.getstatic("C", "value"), work.const(1), work.add(),
            work.putstatic("C", "value"),
        ))
        work.ret()
        cls = ClassDef("C", fields=[
            FieldDef("value", "int", is_static=True),
        ], methods=[work.build()])
        vm = make_vm("rollback")
        vm.load(cls)
        vm.spawn("C", "work", name="a")
        vm.spawn("C", "work", name="b")
        vm.run()
        assert vm.get_static("C", "value") == 3_000

    def test_instance_sync_method_without_receiver_rejected(self):
        a = Asm("bad", argc=0, is_static=False, synchronized=True)
        a.ret()
        cls = ClassDef("C", methods=[a.build()])
        with pytest.raises(TransformError):
            wrap_synchronized_methods(cls)

    def test_reserved_suffix_rejected(self):
        a = Asm("x" + IMPL_SUFFIX, argc=0, synchronized=True)
        a.ret()
        cls = ClassDef("C", methods=[a.build()])
        with pytest.raises(TransformError):
            wrap_synchronized_methods(cls)


class TestInjectRollbackScopes:
    def test_savestate_inserted_before_monitorenter(self):
        m = sync_counter_method().build()
        inject_rollback_scopes(m)
        enters = [pc for pc, ins in enumerate(m.code)
                  if ins.op == bc.MONITORENTER]
        assert len(enters) == 1
        assert m.code[enters[0] - 1].op == bc.SAVESTATE

    def test_handler_appended_with_resume_pc(self):
        m = sync_counter_method().build()
        inject_rollback_scopes(m)
        handler = m.code[-1]
        assert handler.op == bc.ROLLBACK_HANDLER
        assert m.code[handler.b].op == bc.SAVESTATE
        assert m.code[handler.b].a == handler.a  # same state slot

    def test_exception_table_entry_added(self):
        m = sync_counter_method().build()
        before = len(m.exc_table)
        inject_rollback_scopes(m)
        rollback_entries = [e for e in m.exc_table
                            if e.type == ROLLBACK_TYPE]
        assert len(rollback_entries) == 1
        assert len(m.exc_table) == before + 1
        entry = rollback_entries[0]
        # covers the section body through the last monitorexit
        exits = [pc for pc, ins in enumerate(m.code)
                 if ins.op == bc.MONITOREXIT]
        assert entry.end == max(exits) + 1

    def test_scope_map_recorded(self):
        m = sync_counter_method().build()
        inject_rollback_scopes(m)
        assert len(m.rollback_scopes) == 1
        (scope,) = m.rollback_scopes.values()
        assert m.code[scope.save_pc].op == bc.SAVESTATE
        assert m.code[scope.handler_pc].op == bc.ROLLBACK_HANDLER

    def test_nested_sections_get_separate_scopes(self):
        a = Asm("m", argc=0)
        a.getstatic("C", "lock")
        with a.sync():
            a.getstatic("C", "lock2")
            with a.sync():
                a.const(0).pop()
        a.ret()
        m = a.build()
        inject_rollback_scopes(m)
        assert len(m.rollback_scopes) == 2
        handlers = [ins for ins in m.code
                    if ins.op == bc.ROLLBACK_HANDLER]
        assert len(handlers) == 2
        slots = {h.a for h in handlers}
        assert len(slots) == 2

    def test_idempotent(self):
        m = sync_counter_method().build()
        inject_rollback_scopes(m)
        code_len = len(m.code)
        assert inject_rollback_scopes(m) == 0
        assert len(m.code) == code_len

    def test_no_sections_no_change(self):
        a = Asm("m", argc=0)
        a.const(1).pop().ret()
        m = a.build()
        assert inject_rollback_scopes(m) == 0

    def test_branch_targets_still_valid_after_injection(self):
        m = sync_counter_method(count=10).build()
        inject_rollback_scopes(m)
        m.verify()


class TestWriteBarriers:
    def test_all_stores_flagged(self):
        a = Asm("m", argc=0)
        o = a.local()
        a.new("C").store(o)
        a.load(o).const(1).putfield("f")
        a.const(1).putstatic("C", "value")
        a.const(2).newarray().const(0).const(1).astore()
        a.ret()
        m = a.build()
        assert insert_write_barriers(m) == 3
        flagged = [ins.op for ins in m.code if ins.barrier]
        assert sorted(flagged) == sorted(
            [bc.PUTFIELD, bc.PUTSTATIC, bc.ASTORE]
        )

    def test_loads_not_flagged(self):
        a = Asm("m", argc=0)
        a.getstatic("C", "value").pop()
        a.ret()
        m = a.build()
        insert_write_barriers(m)
        assert not any(ins.barrier for ins in m.code)

    def test_repeat_flagging_counts_zero(self):
        a = Asm("m", argc=0)
        a.const(1).putstatic("C", "value")
        a.ret()
        m = a.build()
        assert insert_write_barriers(m) == 1
        assert insert_write_barriers(m) == 0


class TestTransformClass:
    def test_full_pipeline_verifies(self):
        cls = counter_class(sync_counter_method())
        transform_class(cls)
        cls.verify()
        m = cls.method("run")
        assert m.rollback_scopes
        assert any(ins.barrier for ins in m.code)

    def test_unmodified_vm_does_not_transform(self):
        cls = counter_class(sync_counter_method())
        vm = make_vm("unmodified")
        loaded = vm.load(cls)
        assert not loaded.method("run").rollback_scopes
        assert not any(ins.barrier for ins in loaded.method("run").code)

    def test_modified_vm_transforms_on_load(self):
        cls = counter_class(sync_counter_method())
        vm = make_vm("rollback")
        loaded = vm.load(cls)
        assert loaded.method("run").rollback_scopes

    def test_load_does_not_mutate_callers_classdef(self):
        """The same ClassDef loaded into both VMs stays pristine."""
        cls = counter_class(sync_counter_method())
        vm1 = make_vm("rollback")
        vm1.load(cls)
        assert not cls.method("run").rollback_scopes
        vm2 = make_vm("unmodified")
        vm2.load(cls)  # must not see the transformed copy
        assert not any(ins.barrier for ins in cls.method("run").code)


class TestBarrierElision:
    def _program(self):
        """helper() stores outside any section; run() stores inside one and
        calls helper() from inside the section; lonely() stores and is
        never called from a section."""
        helper = Asm("helper", argc=0)
        helper.const(1).putstatic("C", "value")
        helper.ret()

        lonely = Asm("lonely", argc=0)
        lonely.const(2).putstatic("C", "value")
        lonely.ret()

        run = Asm("run", argc=0)
        run.const(0).putstatic("C", "value")  # outside the section
        run.getstatic("C", "lock")
        with run.sync():
            run.const(1).putstatic("C", "value")  # inside
            run.invoke("C", "helper", 0)
        run.ret()

        return ClassDef("C", fields=[
            FieldDef("lock", "ref", is_static=True),
            FieldDef("value", "int", is_static=True),
        ], methods=[helper.build(), lonely.build(), run.build()])

    def test_elision_clears_provably_safe_barriers(self):
        cls = self._program()
        transform_class(cls)
        elided = elide_barriers([cls])
        assert elided >= 1
        # lonely() is never reachable from a section: barrier gone
        lonely_stores = [ins for ins in cls.method("lonely").code
                         if bc.is_store(ins.op)]
        assert all(not ins.barrier for ins in lonely_stores)
        # helper() is called from inside a section: barrier kept
        helper_stores = [ins for ins in cls.method("helper").code
                         if bc.is_store(ins.op)]
        assert all(ins.barrier for ins in helper_stores)

    def test_stores_inside_sections_keep_barriers(self):
        cls = self._program()
        transform_class(cls)
        elide_barriers([cls])
        run = cls.method("run")
        in_section = False
        for ins in run.code:
            if ins.op == bc.MONITORENTER:
                in_section = True
            elif ins.op == bc.MONITOREXIT:
                in_section = False
            elif bc.is_store(ins.op) and in_section:
                assert ins.barrier

    def test_elision_soundness_same_final_state(self):
        """Running with and without elision must produce identical heaps
        and identical rollback behaviour (elision is cost-only)."""
        def run_vm(elision):
            cls = counter_class(sync_counter_method(count=500))
            vm = make_vm("rollback", barrier_elision=elision, seed=7)
            vm.load(cls)
            vm.set_static("C", "lock", vm.new_object("C"))
            vm.spawn("C", "run", priority=1, name="low")
            vm.spawn("C", "run", priority=10, name="high")
            vm.run()
            return vm.get_static("C", "value")

        assert run_vm(True) == run_vm(False) == 1_000

    def test_predecoded_method_not_stale_after_elision(self):
        """Regression: predecode can legitimately run *before* barrier
        elision (Inspector dumps, direct ``predecode_method`` calls).
        Elision then mutates barrier flags the compiled DecodedMethod
        baked in; without invalidation the fast engine keeps charging
        the removed barriers and diverges from the reference clock."""
        from repro.check import final_fingerprint, fingerprint_digest
        from repro.vm.predecode import predecode_method

        def program():
            run = Asm("run", argc=0)
            # outside any section: this barrier gets elided
            run.const(0).putstatic("C", "value")
            run.getstatic("C", "lock")
            with run.sync():
                i = run.local()
                run.for_range(i, lambda: run.const(50), lambda: (
                    run.getstatic("C", "value"), run.const(1), run.add(),
                    run.putstatic("C", "value"),
                ))
            run.ret()
            return counter_class(run)

        def run_vm(interp, *, pre_decode):
            vm = make_vm("rollback", interp=interp, seed=7)
            vm.load(program())
            vm.set_static("C", "lock", vm.new_object("C"))
            vm.spawn("C", "run", priority=1, name="low")
            vm.spawn("C", "run", priority=10, name="high")
            if pre_decode:
                # populate the decode cache before run() runs elision —
                # the mid-campaign mutation this regression guards
                predecode_method(vm, vm.classes["C"].method("run"))
            vm.run()
            return vm

        fast = run_vm("fast", pre_decode=True)
        ref = run_vm("reference", pre_decode=False)
        assert fast.clock.now == ref.clock.now
        assert fingerprint_digest(
            final_fingerprint(fast, "completed")
        ) == fingerprint_digest(final_fingerprint(ref, "completed"))

    def test_transitive_propagation(self):
        """a() called in a section calls b(); b's stores keep barriers."""
        b_m = Asm("b", argc=0)
        b_m.const(1).putstatic("C", "value")
        b_m.ret()

        a_m = Asm("a", argc=0)
        a_m.invoke("C", "b", 0)
        a_m.ret()

        run = Asm("run", argc=0)
        run.getstatic("C", "lock")
        with run.sync():
            run.invoke("C", "a", 0)
        run.ret()

        cls = ClassDef("C", fields=[
            FieldDef("lock", "ref", is_static=True),
            FieldDef("value", "int", is_static=True),
        ], methods=[b_m.build(), a_m.build(), run.build()])
        transform_class(cls)
        elide_barriers([cls])
        b_stores = [ins for ins in cls.method("b").code
                    if bc.is_store(ins.op)]
        assert all(ins.barrier for ins in b_stores)
