"""Unit tests for the statistics helpers (paper §4.1 methodology)."""

import math

import pytest

from repro.util.stats import (
    confidence_interval,
    geometric_mean,
    nearest_rank,
    normalize_series,
    summarize,
)


class TestSummarize:
    def test_mean_and_bounds(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.n == 5
        assert s.mean == pytest.approx(3.0)
        assert s.minimum == 1.0 and s.maximum == 5.0

    def test_stdev_matches_textbook(self):
        s = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert s.stdev == pytest.approx(2.138, abs=1e-3)

    def test_single_sample_has_zero_interval(self):
        s = summarize([42.0])
        assert s.mean == 42.0
        assert s.ci_halfwidth == 0.0

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci_contains_mean(self):
        s = summarize([10.0, 12.0, 9.0, 11.0, 13.0])
        assert s.ci_low < s.mean < s.ci_high
        assert s.ci_high - s.mean == pytest.approx(s.ci_halfwidth)

    def test_ci_90_matches_t_table(self):
        # n=5, dof=4 -> t = 2.132; stdev of [1..5] = sqrt(2.5)
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0], confidence=0.90)
        expected = 2.132 * math.sqrt(2.5) / math.sqrt(5)
        assert s.ci_halfwidth == pytest.approx(expected, rel=1e-3)

    def test_constant_sample(self):
        s = summarize([7.0] * 10)
        assert s.stdev == 0.0
        assert s.ci_halfwidth == 0.0

    def test_interval_shrinks_with_n(self):
        narrow = summarize([1.0, 2.0] * 50)
        wide = summarize([1.0, 2.0] * 2)
        assert narrow.ci_halfwidth < wide.ci_halfwidth

    def test_str_rendering(self):
        assert "n=3" in str(summarize([1.0, 2.0, 3.0]))


class TestTCritical:
    def test_embedded_table_used_even_with_scipy(self, monkeypatch):
        """Without the explicit opt-in the table is authoritative: any
        non-90% confidence must fail, even when scipy is importable."""
        monkeypatch.delenv("REPRO_STATS_SCIPY", raising=False)
        with pytest.raises(ValueError):
            summarize([1.0, 2.0, 3.0], confidence=0.95)

    def test_z_fallback_beyond_table(self, monkeypatch):
        monkeypatch.delenv("REPRO_STATS_SCIPY", raising=False)
        from repro.util.stats import _T90, _Z90, _t_critical

        assert _t_critical(len(_T90), 0.90) == _T90[-1]
        assert _t_critical(len(_T90) + 1, 0.90) == _Z90

    def test_table_matches_scipy(self):
        """Table-vs-exact parity: the embedded values are scipy's
        quantiles rounded to the table's precision."""
        scipy_stats = pytest.importorskip("scipy.stats")
        from repro.util.stats import _T90

        for dof, tabulated in enumerate(_T90, start=1):
            exact = float(scipy_stats.t.ppf(0.95, dof))
            assert tabulated == pytest.approx(exact, abs=2e-3), dof

    def test_scipy_opt_in(self, monkeypatch):
        scipy_stats = pytest.importorskip("scipy.stats")
        monkeypatch.setenv("REPRO_STATS_SCIPY", "1")
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0], confidence=0.95)
        expected = float(scipy_stats.t.ppf(0.975, 4))
        assert s.ci_halfwidth == pytest.approx(
            expected * math.sqrt(2.5) / math.sqrt(5)
        )


class TestConfidenceInterval:
    def test_returns_low_high(self):
        lo, hi = confidence_interval([5.0, 6.0, 7.0])
        assert lo < 6.0 < hi


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestNormalize:
    def test_divides_by_baseline(self):
        assert normalize_series([2.0, 4.0], 2.0) == [1.0, 2.0]

    def test_zero_baseline_raises(self):
        with pytest.raises(ValueError):
            normalize_series([1.0], 0.0)


class TestNearestRank:
    """Edge cases of the integer nearest-rank percentile: the latency
    reports are built on it, so 0-/1-sample tiers must be handled
    loudly (raise) or exactly (single sample), never approximately."""

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            nearest_rank([], 50, 100)

    def test_single_sample_is_every_percentile(self):
        # ceil(1 * p) == 1 for any p in (0, 1]: the only sample is
        # simultaneously the p50, p99, p999 and p100.
        for numer, denom in ((1, 100), (50, 100), (99, 100),
                             (999, 1000), (1, 1)):
            assert nearest_rank([42], numer, denom) == 42

    def test_two_samples(self):
        assert nearest_rank([10, 20], 50, 100) == 10
        assert nearest_rank([10, 20], 99, 100) == 20

    def test_p100_is_max(self):
        assert nearest_rank([1, 2, 3], 100, 100) == 3
        assert nearest_rank([1, 2, 3], 1, 1) == 3

    def test_zero_percentile_raises(self):
        with pytest.raises(ValueError):
            nearest_rank([1, 2, 3], 0, 100)

    def test_over_100_percent_raises(self):
        with pytest.raises(ValueError):
            nearest_rank([1, 2, 3], 101, 100)

    def test_textbook_p50(self):
        # NIST example: nearest-rank p50 of n=4 is the 2nd value.
        assert nearest_rank([15, 20, 35, 50], 50, 100) == 20

    def test_no_float_drift_at_scale(self):
        # 10_000_000 * 999 / 1000 is exactly representable either way,
        # but (n * numer + denom - 1) // denom must stay pure-integer:
        # verify a rank where float rounding would misplace the index.
        n = 10_000_001
        samples = range(1, n + 1)
        rank = (n * 999 + 1000 - 1) // 1000
        assert nearest_rank(samples, 999, 1000) == rank
