"""Unit tests for the MiniJava parser."""

import pytest

from repro.lang import ast
from repro.lang.parser import ParseError, parse


def parse_class(body: str) -> ast.ClassDecl:
    return parse(f"class C {{ {body} }}").classes[0]


def parse_method_body(stmts: str) -> list[ast.Stmt]:
    cls = parse_class(f"static void m() {{ {stmts} }}")
    return cls.methods[0].body


def parse_expr(expr: str) -> ast.Expr:
    body = parse_method_body(f"int x = {expr};")
    return body[0].init


class TestDeclarations:
    def test_class_with_fields_and_methods(self):
        cls = parse_class("""
            static int value;
            volatile static int flag;
            Other friend;
            static void run(int a, float b) { return; }
            int get() { return 1; }
        """)
        assert cls.name == "C"
        assert [f.name for f in cls.fields] == ["value", "flag", "friend"]
        assert cls.fields[1].volatile
        assert cls.fields[2].type_name == "Other"
        assert not cls.fields[2].is_static
        run = cls.methods[0]
        assert run.is_static and run.return_type == "void"
        assert [(p.name, p.type_name) for p in run.params] == [
            ("a", "int"), ("b", "float"),
        ]
        get = cls.methods[1]
        assert not get.is_static and get.return_type == "int"

    def test_synchronized_method_flag(self):
        cls = parse_class("static synchronized void m() { }")
        assert cls.methods[0].synchronized

    def test_multiple_classes(self):
        prog = parse("class A { } class B { }")
        assert [c.name for c in prog.classes] == ["A", "B"]

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse("   ")

    @pytest.mark.parametrize("bad", [
        "class C { synchronized int f; }",
        "class C { static void v; }",
        "class C { volatile void m() { } }",
        "class C { static int m(",
        "class { }",
    ])
    def test_malformed_members_rejected(self, bad):
        with pytest.raises(ParseError):
            parse(bad)


class TestStatements:
    def test_var_decl_with_and_without_init(self):
        body = parse_method_body("int a; int b = 5; C o = new C();")
        assert isinstance(body[0], ast.VarDecl) and body[0].init is None
        assert body[1].init.value == 5
        assert isinstance(body[2].init, ast.New)

    def test_assignment_targets(self):
        body = parse_method_body(
            "x = 1; C.f = 2; o.f = 3; a[i] = 4;"
        )
        assert isinstance(body[0].target, ast.Name)
        assert isinstance(body[1].target, ast.FieldAccess)
        assert isinstance(body[2].target, ast.FieldAccess)
        assert isinstance(body[3].target, ast.Index)

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError, match="assignment target"):
            parse_method_body("1 + 2 = 3;")

    def test_bare_expression_statement_must_call(self):
        with pytest.raises(ParseError, match="must be a call"):
            parse_method_body("x + 1;")

    def test_if_else_chains(self):
        (stmt,) = parse_method_body(
            "if (a) { f(); } else if (b) g(); else { h(); }"
        )
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.orelse[0], ast.If)
        assert stmt.orelse[0].orelse

    def test_while_and_flow(self):
        (stmt,) = parse_method_body(
            "while (x < 3) { if (x == 2) break; continue; }"
        )
        assert isinstance(stmt, ast.While)
        assert isinstance(stmt.body[0], ast.If)
        assert isinstance(stmt.body[0].then[0], ast.Break)
        assert isinstance(stmt.body[1], ast.Continue)

    def test_for_loop_full(self):
        (stmt,) = parse_method_body(
            "for (int i = 0; i < 10; i = i + 1) { f(); }"
        )
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert isinstance(stmt.cond, ast.Binary)
        assert isinstance(stmt.step, ast.Assign)

    def test_for_loop_empty_clauses(self):
        (stmt,) = parse_method_body("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_synchronized(self):
        (stmt,) = parse_method_body("synchronized (C.lock) { f(); }")
        assert isinstance(stmt, ast.Synchronized)
        assert isinstance(stmt.monitor, ast.FieldAccess)

    def test_try_catch_finally(self):
        (stmt,) = parse_method_body("""
            try { f(); }
            catch (ArithmeticException e) { g(); }
            catch (Throwable) { h(); }
            finally { k(); }
        """)
        assert isinstance(stmt, ast.Try)
        assert stmt.catches[0][0] == "ArithmeticException"
        assert stmt.catches[0][1] == "e"
        assert stmt.catches[1][1] is None
        assert stmt.finally_body is not None

    def test_try_alone_rejected(self):
        with pytest.raises(ParseError, match="without catch"):
            parse_method_body("try { f(); }")

    def test_return_and_throw(self):
        body = parse_method_body("if (x) return; throw new E();")
        assert isinstance(body[0].then[0], ast.Return)
        assert isinstance(body[1], ast.Throw)


class TestExpressions:
    def test_precedence(self):
        e = parse_expr("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_parentheses_override(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*" and e.left.op == "+"

    def test_comparison_binds_looser_than_arithmetic(self):
        e = parse_expr("a + 1 < b * 2")
        assert e.op == "<"

    def test_logical_operators_loosest(self):
        e = parse_expr("a < b && c > d || e == f")
        assert e.op == "||"
        assert e.left.op == "&&"

    def test_unary(self):
        e = parse_expr("-x + !y")
        assert e.left.op == "-" and e.right.op == "!"

    def test_postfix_chains(self):
        e = parse_expr("a.b[2].c")
        assert isinstance(e, ast.FieldAccess)
        assert isinstance(e.obj, ast.Index)
        assert isinstance(e.obj.array, ast.FieldAccess)

    def test_calls(self):
        e = parse_expr("f(1, g(), o.m(2))")
        assert isinstance(e, ast.Call) and e.target is None
        assert len(e.args) == 3
        inner = e.args[2]
        assert isinstance(inner, ast.Call)
        assert isinstance(inner.target, ast.Name)

    def test_new_forms(self):
        assert isinstance(parse_expr("new Foo()"), ast.New)
        arr = parse_expr("new int[10]")
        assert isinstance(arr, ast.NewArray)
        ref_arr = parse_expr("new Foo[n]")
        assert isinstance(ref_arr, ast.NewArray)

    def test_literals(self):
        assert parse_expr("null").__class__ is ast.NullLit
        assert parse_expr("true").value is True
        assert parse_expr('"hi"').value == "hi"

    def test_shift_and_bitwise(self):
        e = parse_expr("a << 2 | b >> 1")
        assert e.op == "|"
