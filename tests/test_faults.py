"""Fault-injection plane: plan validation, each fault kind, the invariant
auditor, and campaign determinism.

The headline scenario: a single thread holding a long section while a
100%-rate revocation storm revokes it at every slice boundary.  With the
robustness machinery disabled the run livelocks (the section can never
complete); with the per-site retry budget it terminates, degrading the hot
site one ladder rung and recording the event.
"""

import pytest

from repro import Asm, FaultPlan, InvariantViolation, StarvationError
from repro.core.undolog import UndoLog
from repro.faults.campaign import run_campaign

from conftest import build_class, make_vm

SECTION_ITERS = 4_000


def _storm_vm(plan=None, **options):
    """One thread incrementing ``counter`` SECTION_ITERS times inside one
    synchronized section, with the thread-level livelock guard neutralised
    (``livelock_grace=0``) so only the machinery under test can stop a
    storm."""
    run = Asm("run", argc=0)
    run.getstatic("T", "lock")
    with run.sync():
        i = run.local()
        run.for_range(i, lambda: run.const(SECTION_ITERS), lambda: (
            run.getstatic("T", "counter"), run.const(1), run.add(),
            run.putstatic("T", "counter"),
        ))
    run.ret()
    cls = build_class("T", ["lock:ref", "counter:int"], [run])
    if plan is None:
        plan = FaultPlan(revocation_storm_rate=1.0)
    options.setdefault("livelock_grace", 0)
    options.setdefault("revocation_backoff", 0)
    vm = make_vm("rollback", faults=plan, **options)
    vm.load(cls)
    vm.set_static("T", "lock", vm.new_object("T"))
    vm.spawn("T", "run", name="victim")
    return vm


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(guest_exception_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(revocation_storm_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(handoff_delay_cycles=-1)

    def test_any_enabled(self):
        assert not FaultPlan().any_enabled()
        assert FaultPlan(handoff_delay_rate=0.5).any_enabled()

    def test_vm_without_plan_has_no_plane(self):
        vm = make_vm("rollback")
        assert vm.fault_plane is None


class TestStormLivelock:
    def test_storm_livelocks_without_budget(self):
        """Baseline: with budget, backoff and watchdog all disabled, a
        permanent storm keeps revoking the section and the run never
        finishes (the failure mode ISSUE calls out)."""
        vm = _storm_vm(
            revocation_retry_budget=0,
            watchdog_interval=0,
            max_cycles=3_000_000,
        )
        with pytest.raises(StarvationError):
            vm.run()
        # the storm really was revoking over and over
        assert vm.metrics()["support"]["revocations_completed"] >= 10

    def test_retry_budget_terminates_storm(self):
        """The same storm terminates under a retry budget: the hot site
        degrades (recorded degradation event) and further revocations of
        it are refused."""
        vm = _storm_vm(
            revocation_retry_budget=3,
            watchdog_interval=0,
            max_cycles=30_000_000,
        )
        vm.run()
        assert vm.get_static("T", "counter") == SECTION_ITERS
        s = vm.metrics()["support"]
        assert s["revocations_completed"] == 3
        assert s["degradations_to_inheritance"] == 1
        assert s["retry_budget_exhausted"] == 1
        assert s["revocations_denied_degraded"] >= 1
        degrades = vm.tracer.of_kind("degrade")
        assert degrades and degrades[0].details["reason"] == "budget"

    def test_storm_requests_go_through_chokepoint(self):
        """Storm-injected requests carry origin=storm in the trace — they
        use the same request path as real inversion detection."""
        vm = _storm_vm(
            revocation_retry_budget=3,
            watchdog_interval=0,
            max_cycles=30_000_000,
        )
        vm.run()
        requests = vm.tracer.of_kind("revocation_request")
        assert requests
        assert all(e.details["origin"] == "storm" for e in requests)


class TestHottestSiteEscalation:
    def test_escalation_walks_the_ladder(self):
        """The abort-storm hook demotes the most-revoked site one rung
        per call, then reports exhaustion with None."""
        vm = _storm_vm(
            revocation_retry_budget=3,
            watchdog_interval=0,
            max_cycles=30_000_000,
        )
        vm.run()
        # the budget already demoted the hot site to inheritance; the
        # storm hook pushes it on down to non-revocable
        assert vm.support.escalate_hottest_site() == "nonrevocable"
        s = vm.metrics()["support"]
        assert s["degradations_to_nonrevocable"] == 1
        degrades = vm.tracer.of_kind("degrade")
        assert any(
            e.details["reason"] == "abort-storm" for e in degrades
        )
        # fully degraded: nothing left to demote
        assert vm.support.escalate_hottest_site() is None

    def test_escalation_noop_without_sites(self):
        vm = make_vm("rollback")
        assert vm.support.escalate_hottest_site() is None


class TestGuestExceptionInjection:
    def _loop_vm(self, plan, threads=1, **options):
        run = Asm("run", argc=0)
        run.getstatic("T", "lock")
        with run.sync():
            i = run.local()
            run.for_range(i, lambda: run.const(2_000), lambda: (
                run.getstatic("T", "counter"), run.const(1), run.add(),
                run.putstatic("T", "counter"),
            ))
        run.ret()
        cls = build_class("T", ["lock:ref", "counter:int"], [run])
        vm = make_vm("rollback", faults=plan, **options)
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        for k in range(threads):
            vm.spawn("T", "run", name=f"t{k}")
        return vm

    def test_injected_exception_kills_thread(self):
        plan = FaultPlan(guest_exception_rate=1.0, max_injections=1)
        vm = self._loop_vm(plan, raise_on_uncaught=False)
        vm.run()
        t = vm.thread_named("t0")
        assert t.uncaught is not None
        assert vm.get_static("T", "counter") < 2_000
        assert vm.fault_plane.report() == {"guest_exception": 1, "total": 1}
        faults = vm.tracer.of_kind("fault_inject")
        assert faults and faults[0].details["fault"] == "guest_exception"

    def test_monitor_released_on_injected_exception(self):
        """The exception unwinds through the transformer's release
        handlers, so a second thread still acquires the lock and the VM
        reaches a clean shutdown (balanced section stacks)."""
        plan = FaultPlan(guest_exception_rate=1.0, max_injections=1)
        vm = self._loop_vm(plan, threads=2, raise_on_uncaught=False)
        vm.run()
        dead = [t for t in vm.threads if t.uncaught is not None]
        assert len(dead) == 1
        # the survivor ran its full loop on top of the victim's progress
        assert vm.get_static("T", "counter") >= 2_000
        mon = vm.get_static("T", "lock").monitor
        assert mon is None or mon.owner is None


class TestHandoffDelay:
    def test_delayed_handoff_still_completes(self):
        plan = FaultPlan(handoff_delay_rate=1.0, handoff_delay_cycles=2_500)
        run = Asm("run", argc=0)
        run.getstatic("T", "lock")
        with run.sync():
            i = run.local()
            run.for_range(i, lambda: run.const(500), lambda: (
                run.getstatic("T", "counter"), run.const(1), run.add(),
                run.putstatic("T", "counter"),
            ))
        run.ret()
        cls = build_class("T", ["lock:ref", "counter:int"], [run])
        vm = make_vm("rollback", faults=plan)
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        for k in range(3):
            vm.spawn("T", "run", name=f"t{k}")
        vm.run()
        assert vm.get_static("T", "counter") == 3 * 500
        assert vm.fault_plane.counts.get("handoff_delay", 0) >= 1
        assert vm.tracer.of_kind("handoff_delayed")


class TestInvariantAuditor:
    def test_audited_storm_run_is_clean(self):
        vm = _storm_vm(
            revocation_retry_budget=3,
            watchdog_interval=0,
            audit_rollbacks=True,
            max_cycles=30_000_000,
        )
        vm.run()
        s = vm.metrics()["support"]
        assert s["invariant_checks"] == s["revocations_completed"] >= 1
        assert s["invariant_violations"] == 0

    def test_undo_perturbation_is_benign(self):
        """A duplicated undo entry must not change the restored state —
        the auditor proves it on every rollback."""
        plan = FaultPlan(revocation_storm_rate=1.0, undo_perturb_rate=1.0)
        vm = _storm_vm(
            plan,
            revocation_retry_budget=3,
            watchdog_interval=0,
            audit_rollbacks=True,
            max_cycles=30_000_000,
        )
        vm.run()
        assert vm.get_static("T", "counter") == SECTION_ITERS
        assert vm.fault_plane.counts.get("undo_perturb", 0) >= 1
        assert vm.metrics()["support"]["invariant_violations"] == 0

    def test_corrupted_rollback_is_caught(self, monkeypatch):
        """Sabotage the undo replay (drop the restores); the auditor must
        refuse to let the run continue."""

        def skip_restore(self, mark, on_undo=None):
            n = len(self.entries) - mark
            del self.entries[mark:]
            return n

        monkeypatch.setattr(UndoLog, "rollback_to", skip_restore)
        vm = _storm_vm(
            revocation_retry_budget=3,
            watchdog_interval=0,
            audit_rollbacks=True,
            max_cycles=30_000_000,
        )
        with pytest.raises(InvariantViolation):
            vm.run()
        assert vm.metrics()["support"]["invariant_violations"] == 1
        assert vm.tracer.of_kind("invariant_violation")


class TestCampaign:
    def test_campaign_is_deterministic_and_clean(self):
        first = run_campaign(2)
        second = run_campaign(2)
        assert first == second
        assert first["violations"] == 0
        # every scenario actually injected something across the sweep
        for name, scenario in first["scenarios"].items():
            if name == "deadlock-ring":
                continue  # delays are probabilistic per-handoff; may be 0
            assert scenario["injected"]["total"] > 0, name

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            run_campaign(1, "no-such-scenario")
