"""Lockset-pass tests: the Eraser state machine on synthetic event
streams, plus integration runs over the check scenarios and the Fig. 5
micro-benchmark (the CI smoke contract: zero races, zero inversions)."""

from repro.check.lockset import (
    LocksetAnalyzer,
    run_lockset_fig5,
    run_lockset_scenario,
)
from repro.vm.tracing import TraceEvent


def _ev(kind: str, thread: str, **details) -> TraceEvent:
    return TraceEvent(0, kind, thread, details)


def _read(thread, loc):
    return _ev("mem_read", thread, loc=loc)


def _write(thread, loc):
    return _ev("mem_write", thread, loc=loc)


LOC = ("s", "T", "x")


class TestEraserStateMachine:
    def test_single_thread_never_races(self):
        a = LocksetAnalyzer()
        for _ in range(5):
            a.feed(_write("t1", LOC))
            a.feed(_read("t1", LOC))
        assert a.report()["races"] == []

    def test_unlocked_shared_write_races_once(self):
        a = LocksetAnalyzer()
        a.feed(_write("t1", LOC))
        a.feed(_write("t2", LOC))       # second thread, no common lock
        a.feed(_write("t1", LOC))       # same location: not re-reported
        report = a.report()
        assert len(report["races"]) == 1
        race = report["races"][0]
        assert race["location"] == list(LOC)
        assert race["threads"] == ["t1", "t2"]
        assert race["access"] == "write"

    def test_consistent_lock_discipline_is_clean(self):
        a = LocksetAnalyzer()
        for thread in ("t1", "t2", "t1", "t2"):
            a.feed(_ev("acquire", thread, mon="L"))
            a.feed(_read(thread, LOC))
            a.feed(_write(thread, LOC))
            a.feed(_ev("release", thread, mon="L"))
        assert a.report()["races"] == []

    def test_lockset_is_the_intersection(self):
        """t1 holds {L1, L2}, t2 holds only {L2}: the candidate set
        shrinks to {L2}, which is enough — no race."""
        a = LocksetAnalyzer()
        a.feed(_ev("acquire", "t1", mon="L1"))
        a.feed(_ev("acquire", "t1", mon="L2"))
        a.feed(_write("t1", LOC))
        a.feed(_ev("release", "t1", mon="L2"))
        a.feed(_ev("release", "t1", mon="L1"))
        a.feed(_ev("acquire", "t2", mon="L2"))
        a.feed(_write("t2", LOC))
        a.feed(_ev("release", "t2", mon="L2"))
        assert a.report()["races"] == []

    def test_disjoint_locks_race(self):
        """Eraser initializes the candidate set at the sharing transition
        (t2's access), so the empty intersection — and the report —
        arrives with the next access under a disjoint lock."""
        a = LocksetAnalyzer()
        a.feed(_ev("acquire", "t1", mon="L1"))
        a.feed(_write("t1", LOC))
        a.feed(_ev("release", "t1", mon="L1"))
        a.feed(_ev("acquire", "t2", mon="L2"))
        a.feed(_write("t2", LOC))
        assert a.report()["races"] == []    # candidate set is {L2}
        a.feed(_ev("release", "t2", mon="L2"))
        a.feed(_ev("acquire", "t1", mon="L1"))
        a.feed(_write("t1", LOC))           # {L2} & {L1} = {}: race
        assert len(a.report()["races"]) == 1

    def test_shared_read_only_is_not_reported(self):
        """Read-shared data with no locks is Eraser-clean until someone
        writes after sharing."""
        a = LocksetAnalyzer()
        a.feed(_read("t1", LOC))
        a.feed(_read("t2", LOC))
        a.feed(_read("t3", LOC))
        assert a.report()["races"] == []
        a.feed(_write("t2", LOC))       # first shared write: now it races
        assert len(a.report()["races"]) == 1

    def test_recursive_acquire_adds_no_self_edge(self):
        a = LocksetAnalyzer()
        a.feed(_ev("acquire", "t1", mon="L"))
        a.feed(_ev("acquire", "t1", mon="L", detail="recursive"))
        a.feed(_ev("release", "t1", mon="L"))
        a.feed(_ev("release", "t1", mon="L"))
        assert a.report()["lock_order_inversions"] == []
        assert a._held.get("t1", {}) == {}

    def test_lock_order_inversion_detected(self):
        a = LocksetAnalyzer()
        a.feed(_ev("acquire", "t1", mon="A"))
        a.feed(_ev("acquire", "t1", mon="B"))   # A -> B
        a.feed(_ev("release", "t1", mon="B"))
        a.feed(_ev("release", "t1", mon="A"))
        a.feed(_ev("acquire", "t2", mon="B"))
        a.feed(_ev("acquire", "t2", mon="A"))   # B -> A: inversion
        report = a.report()
        assert report["lock_order_inversions"] == [
            {"locks": ["A", "B"], "threads": ["t1", "t2"]}
        ]

    def test_consistent_nesting_is_not_an_inversion(self):
        a = LocksetAnalyzer()
        for thread in ("t1", "t2"):
            a.feed(_ev("acquire", thread, mon="A"))
            a.feed(_ev("acquire", thread, mon="B"))
            a.feed(_ev("release", thread, mon="B"))
            a.feed(_ev("release", thread, mon="A"))
        assert a.report()["lock_order_inversions"] == []

    def test_rollback_release_drops_the_monitor(self):
        """A revoked section's monitor leaves the holder's lockset even
        though no plain release event ever fires."""
        a = LocksetAnalyzer()
        a.feed(_ev("acquire", "t1", mon="L"))
        a.feed(_ev("rollback_release", "t1", mon="L"))
        a.feed(_write("t1", LOC))
        a.feed(_write("t2", LOC))       # shared, and t1 held nothing
        assert len(a.report()["races"]) == 1

    def test_wait_releases_and_wait_return_reacquires(self):
        a = LocksetAnalyzer()
        a.feed(_ev("acquire", "t1", mon="L"))
        a.feed(_ev("wait", "t1", mon="L"))
        assert a._held["t1"] == {}
        a.feed(_ev("wait_return", "t1", mon="L"))
        assert a._held["t1"] == {"L": 1}

    def test_unmatched_release_is_ignored(self):
        a = LocksetAnalyzer()
        a.feed(_ev("release", "t1", mon="L"))   # never acquired: no crash
        assert a._held.get("t1", {}) == {}


class TestLocksetIntegration:
    def test_racy_scenario_is_flagged(self):
        report = run_lockset_scenario("racy-yield")
        assert len(report["races"]) == 1
        race = report["races"][0]
        assert race["location"] == ["s", "Racy", "counter"]
        assert race["threads"] == ["t1", "t2"]
        assert report["lock_order_inversions"] == []

    def test_locked_scenario_is_clean(self):
        report = run_lockset_scenario("handoff")
        assert report["races"] == []
        assert report["lock_order_inversions"] == []
        assert report["locations"] > 0

    def test_lock_order_scenario_reports_inversion(self):
        report = run_lockset_scenario("lock-order")
        assert len(report["lock_order_inversions"]) == 1
        assert len(report["lock_order_inversions"][0]["locks"]) == 2

    def test_fig5_contract_zero_races_zero_inversions(self):
        """The CI smoke contract: every shared-array access in the Fig. 5
        workload sits inside the global lock."""
        report = run_lockset_fig5()
        assert report["races"] == []
        assert report["lock_order_inversions"] == []
        assert report["locations"] >= 8     # the shared array, at least

    def test_report_is_deterministic(self):
        assert run_lockset_scenario("racy-yield") == \
            run_lockset_scenario("racy-yield")
