"""Tests for the classical baselines (paper §5): priority inheritance and
priority ceiling, plus cross-policy comparisons on the §1 scenario."""

import pytest

from repro import Asm, VMOptions
from repro.bench.workloads import build_medium_inversion
from repro.core.policies import make_support, set_ceiling
from repro.vm.vmcore import JVM

from conftest import build_class, make_vm


def make_priority_vm(mode, **opts):
    return make_vm(mode, scheduler="priority", **opts)


def medium_inversion_elapsed(mode, scheduler="priority", **opts):
    """Run the §1 scenario; return the high-priority thread's elapsed."""
    workload = build_medium_inversion(medium_threads=4)
    vm = make_vm(mode, scheduler=scheduler, **opts)
    workload.install(vm)
    vm.run()
    return vm.thread_named("high").elapsed(), vm


class TestSupportFactory:
    @pytest.mark.parametrize("mode,name", [
        ("unmodified", "unmodified"),
        ("rollback", "rollback"),
        ("inheritance", "inheritance"),
        ("ceiling", "ceiling"),
    ])
    def test_factory(self, mode, name):
        assert make_support(mode).name == name

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            make_support("weird")
        with pytest.raises(ValueError):
            JVM(VMOptions(mode="weird"))


class TestInheritance:
    def _blocked_holder_vm(self):
        """low holds the lock; high blocks on it mid-section."""
        low = Asm("low", argc=0)
        low.getstatic("T", "lock")
        with low.sync():
            i = low.local()
            low.for_range(i, lambda: low.const(6_000), lambda:
                          low.const(0).pop())
        low.ret()

        high = Asm("high", argc=0)
        high.const(3_000).sleep()
        high.getstatic("T", "lock")
        with high.sync():
            high.const(0).pop()
        high.ret()
        return build_class("T", ["lock:ref"], [low, high])

    def test_holder_inherits_blocker_priority(self):
        cls = self._blocked_holder_vm()
        vm = make_priority_vm("inheritance")
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        low_t = vm.spawn("T", "low", priority=1, name="low")
        vm.spawn("T", "high", priority=10, name="high")

        seen = []

        # sample the low thread's effective priority whenever high blocks
        orig = vm.support.on_contended_acquire

        def probe(thread, monitor):
            result = orig(thread, monitor)
            seen.append(monitor.owner.effective_priority)
            return result

        vm.support.on_contended_acquire = probe
        vm.run()
        assert seen and max(seen) == 10  # donation happened
        assert low_t.inherited_priority == -1  # dropped after release
        assert vm.metrics()["support"]["priority_donations"] >= 1

    def test_transitive_donation(self):
        """high blocks on B held by mid, mid blocks on A held by low ->
        low inherits HIGH's priority through the chain."""
        t_a = Asm("hold_a", argc=0)
        t_a.getstatic("T", "a")
        with t_a.sync():
            i = t_a.local()
            t_a.for_range(i, lambda: t_a.const(10_000), lambda:
                          t_a.const(0).pop())
            t_a.getstatic("T", "low_peak")
            t_a.pop()
        t_a.ret()

        t_b = Asm("hold_b", argc=0)
        t_b.const(2_000).sleep()
        t_b.getstatic("T", "b")
        with t_b.sync():
            t_b.getstatic("T", "a")
            with t_b.sync():
                t_b.const(0).pop()
        t_b.ret()

        t_c = Asm("want_b", argc=0)
        t_c.const(5_000).sleep()
        t_c.getstatic("T", "b")
        with t_c.sync():
            t_c.const(0).pop()
        t_c.ret()

        cls = build_class("T", ["a:ref", "b:ref", "low_peak:int"],
                          [t_a, t_b, t_c])
        vm = make_priority_vm("inheritance")
        vm.load(cls)
        vm.set_static("T", "a", vm.new_object("T"))
        vm.set_static("T", "b", vm.new_object("T"))
        low = vm.spawn("T", "hold_a", priority=1, name="low")
        vm.spawn("T", "hold_b", priority=5, name="mid")
        vm.spawn("T", "want_b", priority=10, name="high")

        peaks = {"low": 0}
        orig = vm.support.on_contended_acquire

        def probe(thread, monitor):
            result = orig(thread, monitor)
            peaks["low"] = max(peaks["low"], low.effective_priority)
            return result

        vm.support.on_contended_acquire = probe
        vm.run()
        assert peaks["low"] == 10  # transitively inherited from high

    def test_inheritance_bounds_inversion(self):
        """The §1 medium-thread scenario: inheritance lets the low holder
        outrun the medium threads, bounding the high thread's wait."""
        with_inh, _ = medium_inversion_elapsed("inheritance")
        without, _ = medium_inversion_elapsed("unmodified")
        assert with_inh < without


class TestCeiling:
    def test_boost_applied_and_dropped(self):
        run = Asm("run", argc=0)
        run.getstatic("T", "lock")
        with run.sync():
            i = run.local()
            run.for_range(i, lambda: run.const(3_000), lambda:
                          run.const(0).pop())
        run.ret()
        cls = build_class("T", ["lock:ref"], [run])
        vm = make_priority_vm("ceiling")
        vm.load(cls)
        lock = vm.new_object("T")
        vm.set_static("T", "lock", lock)
        set_ceiling(lock, 9)
        t = vm.spawn("T", "run", priority=2, name="t")
        vm.run()
        assert vm.metrics()["support"]["ceiling_boosts"] >= 1
        assert t.ceiling_boost == -1  # dropped at release

    def test_default_ceiling_is_max_spawned_priority(self):
        run = Asm("run", argc=0)
        run.getstatic("T", "lock")
        with run.sync():
            run.const(0).pop()
        run.ret()
        cls = build_class("T", ["lock:ref"], [run])
        vm = make_priority_vm("ceiling")
        vm.load(cls)
        vm.set_static("T", "lock", vm.new_object("T"))
        vm.spawn("T", "run", priority=2, name="a")
        vm.spawn("T", "run", priority=8, name="b")
        boosts = []
        orig = vm.support.on_monitor_entered

        def probe(thread, monitor, frame, sync_id, recursive):
            r = orig(thread, monitor, frame, sync_id, recursive)
            boosts.append(thread.ceiling_boost)
            return r

        vm.support.on_monitor_entered = probe
        vm.run()
        assert max(boosts) == 8

    def test_ceiling_prevents_inversion_preemption(self):
        """With ceiling = max priority, the low holder cannot be preempted
        by medium threads while inside the section (the §1 scenario is
        avoided a priori)."""
        with_ceiling, _ = medium_inversion_elapsed("ceiling")
        without, _ = medium_inversion_elapsed("unmodified")
        assert with_ceiling < without


class TestCrossPolicyComparison:
    def test_rollback_beats_blocking_for_high_priority(self):
        """The paper's headline, on the §1 scenario under round-robin."""
        rollback, vm = medium_inversion_elapsed(
            "rollback", scheduler="round-robin"
        )
        blocking, _ = medium_inversion_elapsed(
            "unmodified", scheduler="round-robin"
        )
        assert vm.metrics()["support"]["revocations_completed"] >= 1
        assert rollback < blocking

    def test_all_policies_produce_same_final_state(self):
        """Every policy is transparent: the commutative part of the state
        (the spin counter) is identical, and the shared array always holds
        one of the two serializable outcomes (whichever locked thread
        finished last) — never a corrupted mix of both."""
        # valid final arrays: all cells written by the low thread's last
        # pass (iters < 2000), or by the high thread's (iters < 200)
        def final_pattern(iters):
            return [
                max(i for i in range(iters) if i % 16 == k)
                for k in range(16)
            ]

        valid = (final_pattern(2_000), final_pattern(200))
        for mode in ("unmodified", "rollback", "inheritance", "ceiling"):
            workload = build_medium_inversion(medium_threads=2)
            vm = make_vm(mode, scheduler="priority" if mode in
                         ("inheritance", "ceiling") else "round-robin")
            workload.install(vm)
            vm.run()
            assert vm.get_static("Inversion", "spin") == 2 * 4_000, mode
            data = vm.get_static("Inversion", "data").snapshot()
            assert data in valid, f"{mode} produced a non-serializable mix"
