"""Exporters: valid Chrome trace JSON, the ``repro.obs/1`` schema, and
byte-identical artifacts across interpreters, repetitions and worker
counts (the determinism satellite)."""

from __future__ import annotations

import json

import pytest

from repro.obs.capture import ObsSpec, capture_run
from repro.obs.export import SPAN_FORMAT

MODES = ("unmodified", "rollback", "inheritance", "ceiling")


@pytest.fixture(scope="module")
def artifact():
    return capture_run(ObsSpec(scenario="medium-inversion"))


def test_jsonl_schema(artifact):
    lines = artifact["spans_jsonl"].splitlines()
    head = json.loads(lines[0])
    assert head["format"] == SPAN_FORMAT
    assert head["scenario"] == "medium-inversion"
    assert head["clock"] == artifact["clock"]
    for line in lines[1:]:
        span = json.loads(line)
        # stable field order is part of the schema
        assert list(span) == [
            "sid", "kind", "thread", "start", "end", "parent", "attrs"
        ]
        assert span["end"] >= span["start"]
    sids = [json.loads(line)["sid"] for line in lines[1:]]
    assert sids == sorted(sids)


def test_chrome_trace_is_valid_and_exact(artifact):
    doc = json.loads(artifact["chrome_json"])
    events = doc["traceEvents"]
    assert all(e["ph"] in ("M", "X", "i", "C", "b", "e") for e in events)
    # the priority-inversion overlay: async b/e pairs on their own track
    begins = [e for e in events if e["ph"] == "b"]
    ends = [e for e in events if e["ph"] == "e"]
    assert len(begins) == len(ends)
    for b in begins:
        assert b["cat"] == "inversion"
        assert b["args"]["resolution"]
    # one named track per thread plus the VM pseudo-track
    names = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert "(vm)" in names
    assert any(n != "(vm)" for n in names)
    # counter tracks are present
    counters = {e["name"] for e in events if e["ph"] == "C"}
    assert counters == {"ready_queue", "undo_log"}
    # ISSUE acceptance: per-thread attribution sums to the final clock
    other = doc["otherData"]
    total = sum(
        sum(cats.values()) for cats in other["cycles_by_track"].values()
    )
    assert total == other["clock"] == other["cycles_total"]
    assert other["clock"] == artifact["clock"]


def test_duration_events_fit_the_run(artifact):
    doc = json.loads(artifact["chrome_json"])
    for e in doc["traceEvents"]:
        if e["ph"] == "X":
            assert e["ts"] >= 0
            assert e["ts"] + e["dur"] <= artifact["clock"]


@pytest.mark.parametrize("mode", MODES)
def test_byte_identical_across_interpreters(mode):
    fast = capture_run(ObsSpec(
        scenario="deadlock-pair", mode=mode, interp="fast"
    ))
    ref = capture_run(ObsSpec(
        scenario="deadlock-pair", mode=mode, interp="reference"
    ))
    assert fast["spans_jsonl"] == ref["spans_jsonl"]
    assert fast["chrome_json"] == ref["chrome_json"]
    assert fast["folded"] == ref["folded"]
    assert fast["profile"] == ref["profile"]


def test_byte_identical_across_repetitions():
    spec = ObsSpec(scenario="philosophers")
    a = capture_run(spec)
    b = capture_run(spec)
    assert a["spans_jsonl"] == b["spans_jsonl"]
    assert a["chrome_json"] == b["chrome_json"]
    assert a["folded"] == b["folded"]


def test_byte_identical_across_worker_counts(tmp_path):
    """Same artifact whether captured serially or in a worker pool."""
    from repro.bench.parallel import ResultCache, RunEngine
    from repro.obs.capture import capture_with_engine

    spec = ObsSpec(scenario="deadlock-pair")
    serial = capture_with_engine(
        spec, engine=RunEngine(jobs=1, cache=None)
    )
    pooled = capture_with_engine(
        spec, engine=RunEngine(jobs=2, cache=None)
    )
    cached_engine = RunEngine(
        jobs=1, cache=ResultCache(str(tmp_path / "cache"))
    )
    cached_miss = capture_with_engine(spec, engine=cached_engine)
    cached_hit = capture_with_engine(spec, engine=cached_engine)
    for other in (pooled, cached_miss, cached_hit):
        assert serial["spans_jsonl"] == other["spans_jsonl"]
        assert serial["chrome_json"] == other["chrome_json"]
        assert serial["folded"] == other["folded"]


def test_folded_stack_lines_sum_to_guest_cycles(artifact):
    total = 0
    for line in artifact["folded"].splitlines():
        stack, cycles = line.rsplit(" ", 1)
        assert ";" in stack
        total += int(cycles)
    guest = sum(
        cats.get("guest", 0)
        for cats in artifact["profile"]["tracks"].values()
    )
    assert total == guest


def test_summary_reports_trace_health(artifact):
    trace = artifact["summary"]["trace"]
    assert trace["dropped"] == 0
    assert trace["sink_errors"] == 0
    assert trace["events"] > 0


def test_replay_capture_matches_checker_semantics(tmp_path):
    """A checker counterexample replays into a coherent artifact."""
    from repro.check.explorer import CheckItem, run_check_cell
    from repro.check.oracle import counterexample_payload
    from repro.obs.capture import capture_replay

    item = CheckItem(scenario="handoff", prefix=(0, 1),
                     inject="undo-drop")
    result = run_check_cell(item)
    payload = counterexample_payload(
        scenario="handoff", bound=1, modes=item.modes,
        inject="undo-drop", result=result,
        minimized=list(item.prefix),
    )
    artifact = capture_replay(payload)
    assert artifact["mode"] == item.modes[0]
    doc = json.loads(artifact["chrome_json"])
    other = doc["otherData"]
    total = sum(
        sum(cats.values()) for cats in other["cycles_by_track"].values()
    )
    assert total == other["clock"]
    # replays are deterministic too
    again = capture_replay(payload)
    assert artifact["chrome_json"] == again["chrome_json"]
