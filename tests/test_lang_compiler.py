"""MiniJava compiler tests: compile source, run it, assert on guest state."""

import pytest

from repro.lang import CompileError, compile_source
from repro.vm.vmcore import JVM, VMOptions


def run_main(source: str, *, mode="unmodified", statics=(), spawns=None,
             **vm_opts):
    """Compile, load, wire statics (name -> 'new ClassName'), run main."""
    classes = compile_source(source)
    vm = JVM(VMOptions(mode=mode, **vm_opts))
    by_name = {}
    for c in classes:
        by_name[c.name] = vm.load(c)
    for cls_name, field, target_cls in statics:
        vm.set_static(cls_name, field, vm.new_object(target_cls))
    if spawns is None:
        spawns = [("main", [], 5, "main")]
    for method, args, priority, name in spawns:
        vm.spawn(classes[0].name, method, args=args, priority=priority,
                 name=name)
    vm.run()
    return vm


class TestExpressions:
    @pytest.mark.parametrize("expr,expected", [
        ("2 + 3 * 4", 14),
        ("(2 + 3) * 4", 20),
        ("7 / 2", 3),
        ("-7 / 2", -3),
        ("-7 % 3", -1),
        ("1 << 4", 16),
        ("-16 >> 2", -4),
        ("12 & 10", 8),
        ("12 | 10", 14),
        ("12 ^ 10", 6),
        ("-(3)", -3),
        ("!0", 1),
        ("!5", 0),
        ("3 < 4", 1),
        ("4 <= 3", 0),
        ("3 == 3", 1),
        ("3 != 3", 0),
        ("true", 1),
        ("false", 0),
        ("1 < 2 && 3 < 4", 1),
        ("1 < 2 && 4 < 3", 0),
        ("2 < 1 || 3 < 4", 1),
        ("2 < 1 || 4 < 3", 0),
    ])
    def test_arithmetic_and_logic(self, expr, expected):
        vm = run_main(f"""
            class T {{
                static int out;
                static void main() {{ out = {expr}; }}
            }}
        """)
        assert vm.get_static("T", "out") == expected

    def test_float_arithmetic(self):
        vm = run_main("""
            class T {
                static float out;
                static void main() { out = 1.5 + 2.25; }
            }
        """)
        assert vm.get_static("T", "out") == pytest.approx(3.75)

    def test_short_circuit_skips_side_effects(self):
        vm = run_main("""
            class T {
                static int calls;
                static int out;
                static int bump() { calls = calls + 1; return 1; }
                static void main() {
                    out = false && bump() == 1;
                    out = true || bump() == 1;
                }
            }
        """)
        assert vm.get_static("T", "calls") == 0
        assert vm.get_static("T", "out") == 1


class TestStatements:
    def test_while_loop(self):
        vm = run_main("""
            class T {
                static int out;
                static void main() {
                    int i = 0;
                    while (i < 10) { out = out + i; i = i + 1; }
                }
            }
        """)
        assert vm.get_static("T", "out") == 45

    def test_for_loop_with_break_continue(self):
        vm = run_main("""
            class T {
                static int out;
                static void main() {
                    for (int i = 0; i < 100; i = i + 1) {
                        if (i == 10) { break; }
                        if (i % 2 == 0) { continue; }
                        out = out + i;      // 1+3+5+7+9
                    }
                }
            }
        """)
        assert vm.get_static("T", "out") == 25

    def test_nested_loop_break_targets_inner(self):
        vm = run_main("""
            class T {
                static int out;
                static void main() {
                    for (int i = 0; i < 3; i = i + 1) {
                        for (int j = 0; j < 100; j = j + 1) {
                            if (j == 2) { break; }
                            out = out + 1;
                        }
                    }
                }
            }
        """)
        assert vm.get_static("T", "out") == 6

    def test_arrays(self):
        vm = run_main("""
            class T {
                static var data;
                static int out;
                static void main() {
                    data = new int[5];
                    for (int i = 0; i < length(data); i = i + 1) {
                        data[i] = i * i;
                    }
                    out = data[4] + data[2];
                }
            }
        """)
        assert vm.get_static("T", "out") == 20

    def test_instance_fields_and_methods(self):
        vm = run_main("""
            class Point {
                int x;
                int y;
                static int out;

                int sum() { return x + y; }
                void shift(int dx) { x = x + dx; }

                static void main() {
                    Point p = new Point();
                    p.x = 3;
                    p.y = 4;
                    p.shift(10);
                    out = p.sum();
                }
            }
        """)
        assert vm.get_static("Point", "out") == 17

    def test_cross_class_static_calls(self):
        vm = run_main("""
            class Main {
                static int out;
                static void main() { out = Math.square(7); }
            }
            class Math {
                static int square(int n) { return n * n; }
            }
        """)
        assert vm.get_static("Main", "out") == 49

    def test_exceptions(self):
        vm = run_main("""
            class T {
                static int caught;
                static int fin;
                static void main() {
                    try {
                        int x = 1 / 0;
                    } catch (ArithmeticException e) {
                        caught = 1;
                    } finally {
                        fin = 1;
                    }
                }
            }
        """)
        assert vm.get_static("T", "caught") == 1
        assert vm.get_static("T", "fin") == 1

    def test_throw_and_catch_custom(self):
        vm = run_main("""
            class T {
                static int out;
                static void main() {
                    try { throw new Boom(); }
                    catch (Boom) { out = 7; }
                }
            }
            class Boom { }
        """)
        assert vm.get_static("T", "out") == 7

    def test_builtins(self):
        vm = run_main("""
            class T {
                static int t0;
                static int tid;
                static int r;
                static void main() {
                    t0 = currentTime();
                    sleep(500);
                    tid = threadId();
                    r = rand(10);
                    yieldNow();
                    print("done", r);
                }
            }
        """)
        assert vm.get_static("T", "t0") >= 0
        assert 0 <= vm.get_static("T", "r") < 10
        assert vm.console and vm.console[0].startswith("done")


class TestConcurrency:
    COUNTER = """
        class Counter {
            static int value;
            static Counter lock;

            static void run(int iters) {
                for (int i = 0; i < iters; i = i + 1) {
                    synchronized (lock) {
                        value = value + 1;
                    }
                }
            }
        }
    """

    @pytest.mark.parametrize("mode", ["unmodified", "rollback"])
    def test_synchronized_block_counter(self, mode):
        vm = run_main(
            self.COUNTER, mode=mode,
            statics=[("Counter", "lock", "Counter")],
            spawns=[
                ("run", [400], 1, "low"),
                ("run", [400], 10, "high"),
            ],
        )
        assert vm.get_static("Counter", "value") == 800

    def test_synchronized_method(self):
        vm = run_main("""
            class C {
                static int value;
                static synchronized void bump(int n) {
                    for (int i = 0; i < n; i = i + 1) {
                        value = value + 1;
                    }
                }
                static void run() { bump(500); }
            }
        """, mode="rollback", spawns=[
            ("run", [], 1, "a"), ("run", [], 9, "b"),
        ])
        assert vm.get_static("C", "value") == 1000

    def test_wait_notify(self):
        vm = run_main("""
            class PingPong {
                static PingPong lock;
                static int flag;
                static int observed;

                static void consumer() {
                    synchronized (lock) {
                        while (flag == 0) { lock.wait(); }
                        observed = 1;
                    }
                }
                static void producer() {
                    sleep(2000);
                    synchronized (lock) {
                        flag = 1;
                        lock.notifyAll();
                    }
                }
            }
        """, statics=[("PingPong", "lock", "PingPong")], spawns=[
            ("consumer", [], 5, "c"), ("producer", [], 5, "p"),
        ])
        assert vm.get_static("PingPong", "observed") == 1

    def test_rollback_revocation_on_compiled_code(self):
        """The full pipeline: MiniJava -> bytecode -> transformer ->
        revocation, with exact final state."""
        vm = run_main("""
            class W {
                static W lock;
                static int value;
                static void run(int iters, int delay) {
                    sleep(delay);
                    synchronized (lock) {
                        for (int i = 0; i < iters; i = i + 1) {
                            value = value + 1;
                        }
                    }
                }
            }
        """, mode="rollback", statics=[("W", "lock", "W")], spawns=[
            ("run", [2000, 1], 1, "low"),
            ("run", [50, 5000], 10, "high"),
        ], trace=True)
        assert vm.get_static("W", "value") == 2050
        assert vm.metrics()["support"]["revocations_completed"] >= 1


class TestCompileErrors:
    @pytest.mark.parametrize("source,pattern", [
        ("class A { } class A { }", "duplicate class"),
        ("class A { static void m() { int x; int x; } }",
         "duplicate variable"),
        ("class A { static void m() { y = 1; } }", "unknown variable"),
        ("class A { static void m() { return 1; } }",
         "cannot return a value"),
        ("class A { static int m() { return; } }", "missing return value"),
        ("class A { static int m() { int x = 1; } }", "missing return"),
        ("class A { static void m() { break; } }", "outside a loop"),
        ("class A { int f; static void m() { f = 1; } }",
         "static method"),
        ("class A { static void m() { pause(n); } }", "constant integer"),
        ("class A { static void m() { A.wait(); } }", "needs an object"),
        ("class A { static void m() { o.zap(); } }", "no method"),
        ("class A { void m() { } void x() { this.m(); } } "
         "class B { void m() { } }", "ambiguous"),
    ])
    def test_rejected(self, source, pattern):
        with pytest.raises(CompileError, match=pattern):
            compile_source(source)

    def test_unknown_variable_in_expr(self):
        with pytest.raises(CompileError, match="unknown variable"):
            compile_source(
                "class A { static void m() { int x = ghost + 1; } }"
            )


class TestSyntaxSugar:
    def test_compound_assignment(self):
        vm = run_main("""
            class T {
                static int out;
                static void main() {
                    int x = 10;
                    x += 5; x -= 2; x *= 3; x /= 2; x %= 10;
                    out = x;
                }
            }
        """)
        # ((10+5-2)*3)/2 = 19; 19 % 10 = 9
        assert vm.get_static("T", "out") == 9

    def test_compound_assignment_on_fields_and_arrays(self):
        vm = run_main("""
            class T {
                static int acc;
                static var data;
                static void main() {
                    data = new int[3];
                    data[1] += 7;
                    acc += data[1];
                    acc *= 2;
                }
            }
        """)
        assert vm.get_static("T", "acc") == 14

    def test_increment_decrement(self):
        vm = run_main("""
            class T {
                static int out;
                static void main() {
                    int i = 0;
                    while (i < 10) { i++; }
                    i--;
                    out = i;
                }
            }
        """)
        assert vm.get_static("T", "out") == 9

    def test_for_with_increment_step(self):
        vm = run_main("""
            class T {
                static int out;
                static void main() {
                    for (int i = 0; i < 5; i++) { out += i; }
                }
            }
        """)
        assert vm.get_static("T", "out") == 10

    def test_do_while_runs_body_at_least_once(self):
        vm = run_main("""
            class T {
                static int out;
                static void main() {
                    int i = 100;
                    do { out += 1; } while (i < 10);
                }
            }
        """)
        assert vm.get_static("T", "out") == 1

    def test_do_while_loops(self):
        vm = run_main("""
            class T {
                static int out;
                static void main() {
                    int i = 0;
                    do { out += i; i++; } while (i < 5);
                }
            }
        """)
        assert vm.get_static("T", "out") == 10

    def test_do_while_break_continue(self):
        vm = run_main("""
            class T {
                static int out;
                static void main() {
                    int i = 0;
                    do {
                        i++;
                        if (i == 3) { continue; }
                        if (i == 6) { break; }
                        out += i;
                    } while (i < 100);
                }
            }
        """)
        assert vm.get_static("T", "out") == 1 + 2 + 4 + 5

    def test_ternary(self):
        vm = run_main("""
            class T {
                static int out;
                static void main() {
                    int a = 5;
                    out = a > 3 ? 100 : 200;
                    out += a > 10 ? 1 : 2;
                }
            }
        """)
        assert vm.get_static("T", "out") == 102

    def test_nested_ternary(self):
        vm = run_main("""
            class T {
                static int out;
                static void main() {
                    int a = 2;
                    out = a == 1 ? 10 : a == 2 ? 20 : 30;
                }
            }
        """)
        assert vm.get_static("T", "out") == 20

    def test_ternary_short_circuits_sides(self):
        vm = run_main("""
            class T {
                static int calls;
                static int out;
                static int bump() { calls += 1; return 99; }
                static void main() {
                    out = true ? 7 : bump();
                }
            }
        """)
        assert vm.get_static("T", "out") == 7
        assert vm.get_static("T", "calls") == 0
