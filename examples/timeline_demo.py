#!/usr/bin/env python3
"""Visualize a revocation as a per-thread timeline.

A low-priority thread enters a long synchronized section; a high-priority
thread arrives mid-section.  On the blocking VM the high thread just waits
(`-` until the holder exits); on the rollback VM the holder is revoked
(`R`), the high thread enters immediately, and the holder re-executes.

Run:  python examples/timeline_demo.py
"""

from repro import JVM, VMOptions, compile_source, render_timeline

SOURCE = """
class Demo {
    static Demo lock;
    static int work;

    static void run(int iters, int delay) {
        sleep(delay);
        synchronized (lock) {
            for (int i = 0; i < iters; i = i + 1) {
                work = work + 1;
            }
        }
    }
}
"""


def run(mode: str) -> None:
    vm = JVM(VMOptions(mode=mode, trace=True, seed=7))
    for cls in compile_source(SOURCE):
        vm.load(cls)
    vm.set_static("Demo", "lock", vm.new_object("Demo"))
    vm.spawn("Demo", "run", args=[2_500, 1], priority=1, name="low")
    vm.spawn("Demo", "run", args=[80, 8_000], priority=10, name="high")
    vm.run()
    print(f"=== {mode} VM ===")
    print(render_timeline(vm, width=72))
    high = vm.thread_named("high")
    print(f"high-priority elapsed: {high.elapsed()} cycles "
          f"(work = {vm.get_static('Demo', 'work')})\n")


def main() -> None:
    run("unmodified")
    run("rollback")


if __name__ == "__main__":
    main()
