#!/usr/bin/env python3
"""The paper's micro-benchmark written as MiniJava *source code*.

Everything in this repository can be driven from a Java-like source text:
`repro.lang` plays javac's role, the modified VM's load-time transformer
plays the paper's BCEL pass, and the runtime revokes synchronized sections
exactly as in the hand-assembled benchmark.  This example compiles the §4.1
workload from source and compares the two VMs.

Run:  python examples/minijava_benchmark.py
"""

from repro import JVM, VMOptions
from repro.lang import compile_source
from repro.util.fmt import format_table

SOURCE = """
class Bench {
    static Bench lock;
    static var shared;

    static void run(int iters, int writePct) {
        for (int s = 0; s < 8; s = s + 1) {
            pause(20000);                       // random arrival (§4.1)
            synchronized (lock) {
                for (int i = 0; i < iters; i = i + 1) {
                    if (i % 100 < writePct) {
                        shared[i % 64] = i;     // write
                    } else {
                        int tmp = shared[i % 64];   // read
                    }
                }
            }
        }
    }
}
"""

HIGH, LOW = 10, 1


def run_once(mode: str, write_pct: int, seed: int = 2024):
    classes = compile_source(SOURCE)
    vm = JVM(VMOptions(mode=mode, seed=seed))
    for cls in classes:
        vm.load(cls)
    vm.set_static("Bench", "lock", vm.new_object("Bench"))
    vm.set_static("Bench", "shared", vm.new_array(64, 0))
    for k in range(2):
        vm.spawn("Bench", "run", args=[120, write_pct], priority=HIGH,
                 name=f"high-{k}")
    for k in range(8):
        vm.spawn("Bench", "run", args=[600, write_pct], priority=LOW,
                 name=f"low-{k}")
    vm.run()
    highs = [t for t in vm.threads if t.priority == HIGH]
    elapsed = max(t.end_time for t in highs) - min(
        t.start_time for t in highs
    )
    rollbacks = vm.metrics()["support"].get("revocations_completed", 0)
    return elapsed, rollbacks


def main() -> None:
    rows = []
    for write_pct in (0, 50, 100):
        unmod, _ = run_once("unmodified", write_pct)
        mod, rollbacks = run_once("rollback", write_pct)
        rows.append([write_pct, unmod, mod, unmod / mod, rollbacks])
    print("2 high + 8 low threads, compiled from MiniJava source\n")
    print(format_table(
        ["write%", "blocking high-elapsed", "rollback high-elapsed",
         "speedup", "rollbacks"],
        rows,
        float_fmt="{:.2f}",
    ))


if __name__ == "__main__":
    main()
