#!/usr/bin/env python3
"""Quickstart: a contended counter on the modified (rollback) VM.

Four threads of increasing priority each add 1000 to a shared counter
inside a synchronized section.  On the modified VM, whenever a
higher-priority thread arrives at the lock while a lower-priority thread
is inside the section, the holder is *revoked*: its updates are rolled
back from the undo log and it re-executes the section later.  The final
counter value is nevertheless exactly correct — revocation is transparent.

Run:  python examples/quickstart.py
"""

from repro import JVM, VMOptions, Asm, ClassDef, FieldDef

INCREMENTS = 1_000
THREADS = 4


def build_counter_class() -> ClassDef:
    """class Counter { static int value; static Object lock;
    static void run() { synchronized (lock) { value += ... } } }"""
    counter = ClassDef(
        "Counter",
        fields=[
            FieldDef("value", "int", is_static=True),
            FieldDef("lock", "ref", is_static=True),
        ],
    )
    run = Asm("run", argc=0)
    run.getstatic("Counter", "lock")
    with run.sync():
        i = run.local()
        run.for_range(i, lambda: run.const(INCREMENTS), lambda: (
            run.getstatic("Counter", "value"),
            run.const(1), run.add(),
            run.putstatic("Counter", "value"),
        ))
    run.ret()
    counter.add_method(run.build())
    return counter


def main() -> None:
    for mode in ("unmodified", "rollback"):
        vm = JVM(VMOptions(mode=mode, seed=42, trace=True))
        vm.load(build_counter_class())
        vm.set_static("Counter", "lock", vm.new_object("Counter"))
        for i in range(THREADS):
            vm.spawn("Counter", "run", priority=1 + 2 * i, name=f"t{i}")
        vm.run()

        value = vm.get_static("Counter", "value")
        metrics = vm.metrics()
        print(f"=== {mode} VM ===")
        print(f"final counter: {value} (expected {THREADS * INCREMENTS})")
        print(f"virtual time:  {metrics['elapsed_cycles']} cycles")
        support = {k: v for k, v in metrics["support"].items() if v}
        if support:
            print("rollback runtime counters:")
            for key, val in sorted(support.items()):
                print(f"  {key:32} {val}")
        rollbacks = vm.tracer.of_kind("rollback_begin")
        for event in rollbacks:
            print(f"revocation: {event}")
        print()
        assert value == THREADS * INCREMENTS, "revocation must be transparent"


if __name__ == "__main__":
    main()
