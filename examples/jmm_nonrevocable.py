#!/usr/bin/env python3
"""The paper's JMM-consistency scenarios (Figures 2 and 3, §2.1–2.2).

Figure 2 — nesting: thread T, inside monitors ``outer`` then ``inner``,
writes ``v`` and releases ``inner``.  Thread T' then acquires ``inner``
and reads ``v`` — legally observing T's speculative write.  Rolling back
``outer`` now would make that value appear "out of thin air", so the
runtime marks T's sections non-revocable; a high-priority thread arriving
at ``outer`` is denied revocation and must block (classic behaviour).

Figure 3 — volatile: the same effect without any monitor on the reader's
side, through a volatile variable.

Run:  python examples/jmm_nonrevocable.py
"""

from repro import JVM, VMOptions, Asm, ClassDef, FieldDef


def build_figure2() -> ClassDef:
    cls = ClassDef(
        "Fig2",
        fields=[
            FieldDef("outer", "ref", is_static=True),
            FieldDef("inner", "ref", is_static=True),
            FieldDef("v", "int", is_static=True),
            FieldDef("seen", "int", is_static=True),
        ],
    )

    # T: synchronized(outer) { synchronized(inner) { v = 1; } spin; }
    t = Asm("writer", argc=0)
    t.getstatic("Fig2", "outer")
    with t.sync():
        t.getstatic("Fig2", "inner")
        with t.sync():
            t.const(1).putstatic("Fig2", "v")
        i = t.local()
        t.for_range(i, lambda: t.const(3_000), lambda: t.const(0).pop())
    t.ret()
    cls.add_method(t.build())

    # T': synchronized(inner) { seen = v; }
    t2 = Asm("reader", argc=0)
    t2.pause(500)
    t2.getstatic("Fig2", "inner")
    with t2.sync():
        t2.getstatic("Fig2", "v").putstatic("Fig2", "seen")
    t2.ret()
    cls.add_method(t2.build())

    # Th: synchronized(outer) {} — arrives while T holds outer
    th = Asm("contender", argc=0)
    th.pause(1_500)
    th.getstatic("Fig2", "outer")
    with th.sync():
        th.const(0).pop()
    th.ret()
    cls.add_method(th.build())
    return cls


def build_figure3() -> ClassDef:
    cls = ClassDef(
        "Fig3",
        fields=[
            FieldDef("m", "ref", is_static=True),
            FieldDef("vol", "int", volatile=True, is_static=True),
            FieldDef("seen", "int", is_static=True),
        ],
    )

    # T: synchronized(M) { vol = 1; spin; }
    t = Asm("writer", argc=0)
    t.getstatic("Fig3", "m")
    with t.sync():
        t.const(1).putstatic("Fig3", "vol")
        i = t.local()
        t.for_range(i, lambda: t.const(3_000), lambda: t.const(0).pop())
    t.ret()
    cls.add_method(t.build())

    # T': seen = vol;  (no monitor at all — the volatile rule alone)
    t2 = Asm("reader", argc=0)
    t2.pause(500)
    t2.getstatic("Fig3", "vol").putstatic("Fig3", "seen")
    t2.ret()
    cls.add_method(t2.build())

    th = Asm("contender", argc=0)
    th.pause(1_500)
    th.getstatic("Fig3", "m")
    with th.sync():
        th.const(0).pop()
    th.ret()
    cls.add_method(th.build())
    return cls


def run_scenario(name: str, cls, lock_fields) -> None:
    vm = JVM(VMOptions(mode="rollback", trace=True))
    vm.load(cls)
    for field_name in lock_fields:
        vm.set_static(cls.name, field_name, vm.new_object(cls.name))
    vm.spawn(cls.name, "writer", priority=1, name="T")
    vm.spawn(cls.name, "reader", priority=5, name="T'")
    vm.spawn(cls.name, "contender", priority=10, name="Th")
    vm.run()

    print(f"=== {name} ===")
    print(f"reader observed v = {vm.get_static(cls.name, 'seen')}")
    marks = vm.tracer.of_kind("nonrevocable")
    denials = vm.tracer.of_kind("revocation_denied")
    completed = vm.metrics()["support"]["revocations_completed"]
    for e in marks:
        print(f"  {e}")
    for e in denials:
        print(f"  {e}")
    print(f"revocations completed: {completed} (must be 0 — the observed "
          "write pinned the section)")
    assert completed == 0
    print()


def main() -> None:
    run_scenario("Figure 2: nested-monitor exposure",
                 build_figure2(), ("outer", "inner"))
    run_scenario("Figure 3: volatile exposure",
                 build_figure3(), ("m",))


if __name__ == "__main__":
    main()
