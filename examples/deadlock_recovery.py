#!/usr/bin/env python3
"""Deadlock detection and resolution by revocation (paper §1).

Two threads acquire two locks in opposite orders and deadlock.  On the
unmodified VM the scheduler detects the wait-for cycle and raises
``DeadlockError`` (a real JVM would simply hang).  On the rollback VM the
runtime picks a victim, revokes its outer synchronized section — undoing
its updates and releasing its lock — and both threads complete.

Also demonstrates an N-thread circular deadlock.

Run:  python examples/deadlock_recovery.py
"""

from repro import DeadlockError, JVM, VMOptions
from repro.bench.workloads import build_deadlock_pair, build_deadlock_ring


def run_workload(workload_factory, mode: str) -> None:
    workload = workload_factory()
    vm = JVM(VMOptions(mode=mode, trace=True, max_cycles=5_000_000))
    workload.install(vm)
    try:
        vm.run()
    except DeadlockError as exc:
        print(f"  {mode}: DEADLOCK — {exc}")
        return
    counter = vm.get_static(workload.classdef.name, "counter")
    resolved = vm.metrics()["support"].get("deadlocks_resolved", 0)
    print(
        f"  {mode}: completed; counter={counter}, "
        f"deadlocks resolved by revocation={resolved}"
    )
    for event in vm.tracer.of_kind("deadlock_resolve"):
        print(f"    {event}")


def main() -> None:
    print("two-thread deadlock (opposite lock order):")
    for mode in ("unmodified", "rollback"):
        run_workload(build_deadlock_pair, mode)

    print("\nfour-thread circular deadlock:")
    for mode in ("unmodified", "rollback"):
        run_workload(lambda: build_deadlock_ring(4), mode)


if __name__ == "__main__":
    main()
