#!/usr/bin/env python3
"""Priority inversion across all four systems.

Runs the paper's micro-benchmark (scaled down) under:

* the unmodified blocking VM (the paper's baseline),
* the rollback VM (the paper's contribution),
* priority inheritance and priority ceiling (the classical protocols the
  paper argues against, §5) — shown under the strict priority scheduler,
  their natural habitat.

The interesting column is the high-priority elapsed time: revocation lets
high-priority threads preempt section holders instead of waiting for them.

Run:  python examples/priority_inversion_demo.py
"""

from repro import VMOptions
from repro.bench.harness import run_microbench
from repro.bench.microbench import MicrobenchConfig
from repro.util.fmt import format_table


def main() -> None:
    config = MicrobenchConfig(
        high_threads=2,
        low_threads=6,
        iters_high=100,
        iters_low=400,
        sections=8,
        write_pct=40,
        seed=1234,
    )
    rows = []
    for mode, scheduler in (
        ("unmodified", "round-robin"),
        ("rollback", "round-robin"),
        ("inheritance", "priority"),
        ("ceiling", "priority"),
    ):
        result = run_microbench(
            config,
            mode,
            options=VMOptions(mode=mode, scheduler=scheduler),
        )
        rows.append(
            [
                f"{mode} ({scheduler})",
                result.high_elapsed,
                result.overall_elapsed,
                result.rollbacks,
                result.context_switches,
            ]
        )
    print(
        format_table(
            ["system", "high-prio elapsed", "overall", "rollbacks",
             "ctx switches"],
            rows,
            float_fmt="{:.0f}",
        )
    )
    baseline = rows[0][1]
    rollback = rows[1][1]
    print(
        f"\nhigh-priority speedup of rollback over blocking: "
        f"{baseline / rollback:.2f}x"
    )


if __name__ == "__main__":
    main()
