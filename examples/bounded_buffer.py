#!/usr/bin/env python3
"""Producer/consumer over wait/notify on both VMs.

A classic bounded buffer: producers block on ``wait`` when the buffer is
full, consumers when it is empty, each ``notifyAll``-ing after mutating.
On the rollback VM, the ``wait`` calls mark the enclosing synchronized
sections non-revocable (paper §2.2), so the workload runs correctly with
the revocation machinery armed but standing down — a good check that the
modified VM's overheads do not disturb condition-variable protocols.

Run:  python examples/bounded_buffer.py
"""

from repro import JVM, VMOptions
from repro.bench.workloads import build_bounded_buffer


def main() -> None:
    for mode in ("unmodified", "rollback"):
        workload = build_bounded_buffer(
            capacity=3, items_per_producer=30, producers=2, consumers=2
        )
        vm = JVM(VMOptions(mode=mode, max_cycles=20_000_000))
        workload.install(vm)
        vm.run()
        produced = vm.get_static("Buffer", "produced")
        consumed = vm.get_static("Buffer", "consumed")
        count = vm.get_static("Buffer", "count")
        m = vm.metrics()
        print(f"=== {mode} VM ===")
        print(f"produced={produced} consumed={consumed} "
              f"left-in-buffer={count}")
        print(f"virtual time: {m['elapsed_cycles']} cycles, "
              f"context switches: {m['context_switches']}")
        if mode == "rollback":
            support = m["support"]
            print(
                "wait-induced non-revocability marks: "
                f"{support['nonrevocable_wait']}"
            )
        assert produced == 60 and consumed == 60 and count == 0
        print()


if __name__ == "__main__":
    main()
