"""Figure 7: overall elapsed time, 100K-scale high-priority inner loops.

Regenerates the paper's Figure 7 panels (a) 2 high + 8 low, (b) 5 + 5,
(c) 8 + 2 — the MODIFIED (rollback) vs UNMODIFIED series over write ratios
0..100%, normalized to the unmodified VM at 100% reads.  The rendered table
and chart print with the benchmark output; EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

import pytest

from bench_common import check_shape, get_panel, report


@pytest.mark.parametrize("panel", ["a", "b", "c"])
def test_fig7(benchmark, panel):
    result = benchmark.pedantic(
        get_panel, args=(7, panel), rounds=1, iterations=1,
    )
    check_shape(result)
    report(result)
