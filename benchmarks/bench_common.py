"""Shared machinery for the figure benchmarks.

Figures 7 and 8 plot the *same runs* as Figures 5 and 6 (only the metric
changes: overall elapsed instead of high-priority elapsed), so panel sweeps
are cached per session and reused — exactly as the paper derives all four
figures from one set of benchmark executions.

Environment knobs:

* ``REPRO_BENCH_REPS``  — repetitions (paired seeds) per configuration
  (default 2; the paper uses 5).
* ``REPRO_BENCH_SCALE`` — multiplies iteration/section counts
  (see :mod:`repro.bench.figures`).
* ``REPRO_BENCH_JOBS`` / ``REPRO_BENCH_CACHE`` / ``REPRO_BENCH_CACHE_DIR``
  — worker pool and on-disk result cache (see
  :mod:`repro.bench.parallel`); the measured numbers are identical for
  every setting.
"""

from __future__ import annotations

import os

from repro.bench.figures import FigurePanel, PanelResult, run_panel
from repro.bench.parallel import RunEngine
from repro.bench.report import render_panel

_PANEL_CACHE: dict[tuple[int, str], PanelResult] = {}

_ENGINE: RunEngine | None = None


def engine() -> RunEngine:
    """One env-configured run engine shared by the whole bench session."""
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = RunEngine.from_env()
    return _ENGINE

#: figures sharing one sweep: 7 reuses 5's runs, 8 reuses 6's
_SWEEP_ALIAS = {5: 5, 6: 6, 7: 5, 8: 6}


def repetitions() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_REPS", "2")))
    except ValueError:
        return 2


def get_panel(figure: int, panel: str) -> PanelResult:
    """Measure (or fetch) the sweep behind one figure panel."""
    sweep_figure = _SWEEP_ALIAS[figure]
    key = (sweep_figure, panel)
    if key not in _PANEL_CACHE:
        _PANEL_CACHE[key] = run_panel(
            FigurePanel(sweep_figure, panel),
            repetitions=repetitions(),
            engine=engine(),
        )
    cached = _PANEL_CACHE[key]
    if figure == sweep_figure:
        return cached
    # same comparisons, re-labelled for the overall-time figure
    return PanelResult(
        panel=FigurePanel(figure, panel),
        write_ratios=cached.write_ratios,
        comparisons=cached.comparisons,
    )


def report(result: PanelResult) -> None:
    print()
    print(render_panel(result))


def check_shape(result: PanelResult) -> None:
    """Sanity constraints that must hold for ANY healthy run, used by all
    figure benches (the paper-vs-measured comparison lives in
    EXPERIMENTS.md; these guards only catch a broken harness):

    * every series is positive,
    * the unmodified series is normalized to 1.0 at 0% writes,
    * overall elapsed >= high-priority elapsed for every configuration.
    """
    for mode in ("rollback", "unmodified"):
        for metric in ("high_elapsed", "overall_elapsed"):
            series = result.series(mode, metric)
            assert all(v > 0 for v in series)
    baseline = result.series("unmodified", result.panel.metric)
    assert abs(baseline[0] - 1.0) < 1e-9
    for comparison in result.comparisons:
        for mode in ("rollback", "unmodified"):
            for run in comparison.runs[mode]:
                assert run.overall_elapsed >= run.high_elapsed
