"""Sensitivity analysis: how the reproduced shape depends on calibration.

DESIGN.md §4 documents that the figures' shape hinges on the platform
geometry — sections spanning a few scheduling quanta, arrival pauses on
the order of a section, and barrier costs small relative to data ops.
These benches quantify each dependence so future recalibration (or a
skeptical reader) can see the regime boundaries instead of taking the
defaults on faith.

* ``sens-quantum`` — with *no* sleeping threads, quantum ≫ section makes
  sections atomic on the uniprocessor and contention vanishes; the
  benchmark's arrival pauses, however, wake sleepers at yield points and
  keep slicing the holder, so the measured gain stays positive across the
  sweep.  The bench prints the curve for inspection.
* ``sens-pause``  — arrival pauses much shorter than a section produce a
  convoy regime; much longer pauses idle the lock.  Both shrink what
  revocation can win.
* ``sens-barrier`` — the §4.2 erosion: scaling the undo-log append cost
  directly trades away the modified VM's advantage at high write ratios.
"""

from dataclasses import replace

from repro.bench.harness import compare_modes
from repro.bench.microbench import MicrobenchConfig
from repro.util.fmt import format_table
from repro.vm.clock import CostModel
from repro.vm.vmcore import VMOptions

BASE = MicrobenchConfig(
    high_threads=2, low_threads=8, iters_high=120, iters_low=600,
    sections=10, write_pct=40, seed=404,
)


def speedup(config, cost_model=None, reps=2):
    cmp_result = compare_modes(
        config, repetitions=reps,
        options=VMOptions(cost_model=cost_model or CostModel()),
    )
    return cmp_result.speedup()


class TestQuantumSensitivity:
    def test_gain_peaks_at_paper_geometry(self, benchmark):
        def sweep():
            out = []
            for quantum in (1_000, 8_000, 64_000):
                cm = replace(CostModel(), quantum=quantum)
                out.append((quantum, speedup(BASE, cm)))
            return out

        points = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\n[sens-quantum] high-priority speedup vs quantum "
              "(low section ~ 18.6k cycles)")
        print(format_table(["quantum", "speedup"], points))
        # sanity: the mechanism functions across two orders of magnitude
        assert all(0.5 < gain < 5.0 for _, gain in points)


class TestPauseSensitivity:
    def test_pause_regimes(self, benchmark):
        def sweep():
            out = []
            for pause in (1_000, 20_000, 150_000):
                config = replace(BASE, pause_mean=pause)
                out.append((pause, speedup(config)))
            return out

        points = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\n[sens-pause] high-priority speedup vs arrival pause")
        print(format_table(["pause mean", "speedup"], points))
        by_pause = dict(points)
        # gains fall monotonically as pauses idle the lock
        assert by_pause[1_000] > by_pause[20_000] > by_pause[150_000]
        # with the lock mostly idle there is (almost) nothing left to win
        assert by_pause[150_000] < 1.2


class TestBarrierCostSensitivity:
    def test_logging_cost_erodes_the_win(self, benchmark):
        config = replace(BASE, write_pct=100)

        def sweep():
            out = []
            for slow in (0, 3, 24):
                cm = replace(CostModel(), barrier_slow=slow)
                out.append((slow, speedup(config, cm)))
            return out

        points = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\n[sens-barrier] speedup at 100% writes vs undo-log "
              "append cost")
        print(format_table(["barrier_slow", "speedup"], points))
        costs = [p[0] for p in points]
        gains = [p[1] for p in points]
        # monotone erosion (allowing small measurement noise)
        assert gains[costs.index(0)] >= gains[costs.index(24)] - 0.05
