"""Host-speed microbenchmarks for the predecoded fast interpreter.

Opt-in: these measure **host wall clock**, which is meaningless noise on
a loaded CI box unless explicitly requested, so every test skips unless
``REPRO_BENCH_HOST=1`` is set.  Run with::

    REPRO_BENCH_HOST=1 PYTHONPATH=src python -m pytest benchmarks/test_interp_speed.py -s

Three paths are timed separately, fast vs reference interpreter on the
same guest program:

* **block batching** — long straight-line arithmetic: one predecoded
  block per loop body, clock charged twice per block instead of per
  instruction (and, since superblock trace compilation, the whole loop
  runs iterations back to back in one generated function);
* **superinstructions** — compare+branch and constant-divisor div/mod
  fusions inside a branchy loop;
* **dispatch** — the figure micro-benchmark (monitors, barriers,
  invokes): most time outside fused blocks, measuring that the block
  preamble does not slow the dispatch chain down.

The committed ``BENCH_interp.json`` (written by ``python -m repro.bench
--host-perf``) provides a *soft* regression threshold: each path must
retain a reasonable fraction of the recorded full-suite speedup rather
than match it exactly — microbenchmark mixes differ from the suite mix,
and wall clocks wobble.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro import Asm, ClassDef, FieldDef, JVM, VMOptions
from repro.bench.harness import run_microbench
from repro.bench.hostperf import load_host_perf
from repro.bench.microbench import MicrobenchConfig

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_HOST") != "1",
    reason="host wall-clock benchmarks are opt-in (REPRO_BENCH_HOST=1)",
)

REPO_ROOT = Path(__file__).resolve().parent.parent
REPEATS = 3


def _recorded_speedup() -> float:
    report = load_host_perf(REPO_ROOT / "BENCH_interp.json")
    if report is None:
        return 0.0
    return float(report.get("speedup_fast_vs_reference", 0.0))


def _threshold() -> float:
    """Soft floor: at least 1.5x, and at least 50% of the recorded
    full-suite speedup when a baseline is committed.  Raised from
    (1.2x, 40%) once superblock trace compilation landed: the fused
    paths below run whole loop iterations per Python call, so they must
    clear a larger fraction of the suite-level speedup."""
    return max(1.5, 0.5 * _recorded_speedup())


def _time_vm(install, interp: str) -> float:
    """Best-of-N wall clock of one single-threaded guest program."""
    best = float("inf")
    for _ in range(REPEATS):
        vm = JVM(VMOptions(interp=interp, max_cycles=500_000_000))
        install(vm)
        t0 = time.perf_counter()
        vm.run()
        best = min(best, time.perf_counter() - t0)
    return best


def _compare(name: str, install) -> float:
    ref = _time_vm(install, "reference")
    fast = _time_vm(install, "fast")
    speedup = ref / fast if fast else float("inf")
    print(
        f"\n[interp-speed] {name}: reference={ref:.3f}s fast={fast:.3f}s "
        f"speedup={speedup:.2f}x (soft floor {_threshold():.2f}x, "
        f"recorded suite speedup {_recorded_speedup():.2f}x)"
    )
    return speedup


def _install(cls: ClassDef):
    def install(vm: JVM) -> None:
        vm.load(cls)
        vm.spawn(cls.name, "main", priority=5, name="t0")
    return install


def test_block_batching_speed() -> None:
    """Straight-line arithmetic: the best case for basic-block fusion."""
    def body() -> None:
        # 8 chained ALU ops + a store: one fused block per iteration
        a.const(3).const(4).add().const(2).mul()
        a.const(7).add().const(5).sub().const(1).or_()
        a.putstatic("Blk", "out")

    a = Asm("main")
    i = a.local("i")
    a.for_range(i, lambda: a.const(60_000), body)
    a.ret()
    cls = ClassDef("Blk", fields=[FieldDef("out", is_static=True)])
    cls.add_method(a.build())
    assert _compare("block-batching", _install(cls)) >= _threshold()


def test_superinstruction_speed() -> None:
    """cmp+branch and const-divisor fusions on a branchy loop body."""
    def body() -> None:
        skip = a.label("skip")
        a.load(i).const(3).mod()          # const+mod superinstruction
        a.const(1).gt().ifnot(skip)       # cmp+branch superinstruction
        a.load(i).const(7).div()          # const+div superinstruction
        a.putstatic("Sup", "out")
        a.place(skip)

    a = Asm("main")
    i = a.local("i")
    a.for_range(i, lambda: a.const(60_000), body)
    a.ret()
    cls = ClassDef("Sup", fields=[FieldDef("out", is_static=True)])
    cls.add_method(a.build())
    assert _compare("superinstructions", _install(cls)) >= _threshold()


def test_dispatch_speed_on_figure_microbench() -> None:
    """The real figure workload: fused blocks plus heavy chain traffic
    (monitors, invokes, barriers).  The floor is looser — much of this
    time is in the shared runtime support plane, not the interpreter."""
    config = MicrobenchConfig(
        high_threads=2, low_threads=2, iters_high=120, iters_low=240,
        sections=6, write_pct=60, seed=42,
    )

    def run(interp: str) -> float:
        best = float("inf")
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            run_microbench(
                config, "rollback", options=VMOptions(interp=interp)
            )
            best = min(best, time.perf_counter() - t0)
        return best

    ref, fast = run("reference"), run("fast")
    speedup = ref / fast if fast else float("inf")
    print(
        f"\n[interp-speed] dispatch(figure-microbench): reference={ref:.3f}s "
        f"fast={fast:.3f}s speedup={speedup:.2f}x"
    )
    assert speedup >= max(1.2, 0.35 * _recorded_speedup())
