"""Overhead micro-benchmarks behind the paper's §4.2 claims.

* ``ovh-log`` — "the cost of operations related to log maintenance ... is
  small, compared to the elapsed time of the entire benchmark": a single
  uncontended thread (no revocations possible) on both VMs isolates the
  write/read-barrier and logging overhead.
* ``ovh-roll`` — rollback cost is linear in the number of logged entries:
  sweep the section length and report virtual rollback cycles per entry.
* ``ovh-elide`` — the §6 compiler-optimization hook: barrier elision
  removes measurable cost from code that provably runs outside sections.
"""

import pytest

from repro.bench.harness import run_microbench
from repro.bench.microbench import MicrobenchConfig
from repro.util.fmt import format_table
from repro.vm.vmcore import VMOptions


def _single_thread_config(write_pct, iters=800):
    """One 'high' thread, minimal everything else: zero contention."""
    return MicrobenchConfig(
        high_threads=1, low_threads=1, iters_high=iters,
        iters_low=1,  # the low thread exits almost immediately
        sections=6, write_pct=write_pct, seed=31,
    )


class TestLoggingOverhead:
    @pytest.mark.parametrize("write_pct", [0, 50, 100])
    def test_barrier_and_log_overhead(self, benchmark, write_pct):
        config = _single_thread_config(write_pct)

        def measure():
            unmod = run_microbench(config, "unmodified")
            mod = run_microbench(config, "rollback")
            return unmod, mod

        unmod, mod = benchmark.pedantic(measure, rounds=1, iterations=1)
        assert mod.rollbacks == 0  # truly uncontended
        overhead = mod.high_elapsed / unmod.high_elapsed - 1.0
        print(
            f"\n[ovh-log] write%={write_pct}: unmodified="
            f"{unmod.high_elapsed} cycles, modified={mod.high_elapsed} "
            f"cycles, overhead={overhead * 100:.1f}% "
            f"(slow-path barriers: "
            f"{mod.metrics['support']['barrier_slow_hits']})"
        )
        # the overhead exists but must stay a modest fraction
        assert 0.0 <= overhead < 1.0
        if write_pct == 0:
            # pure reads: only read barriers; cheapest configuration
            assert overhead < 0.5


class TestRollbackCost:
    def test_rollback_cost_linear_in_log_size(self, benchmark):
        """Virtual rollback cycles grow linearly with undone entries."""
        from repro import Asm
        from repro.vm.vmcore import JVM

        def one_size(iters):
            from repro.vm.classfile import ClassDef, FieldDef

            cls = ClassDef("T", fields=[
                FieldDef("lock", "ref", is_static=True),
                FieldDef("counter", "int", is_static=True),
            ])
            run = Asm("run", argc=2)
            run.load(1).sleep()
            run.getstatic("T", "lock")
            with run.sync():
                i = run.local()
                run.for_range(i, lambda: run.load(0), lambda: (
                    run.getstatic("T", "counter"), run.const(1), run.add(),
                    run.putstatic("T", "counter"),
                ))
            run.ret()
            cls.add_method(run.build())
            vm = JVM(VMOptions(mode="rollback", seed=7))
            vm.load(cls)
            vm.set_static("T", "lock", vm.new_object("T"))
            vm.spawn("T", "run", args=[iters, 1], priority=1, name="low")
            vm.spawn("T", "run", args=[10, iters * 8], priority=10,
                     name="high")
            vm.run()
            s = vm.metrics()["support"]
            return s["undo_entries_restored"], s["rollback_cycles"]

        def sweep():
            # sections must span multiple scheduling quanta, or the holder
            # finishes within its first slice and no inversion ever forms
            return [one_size(n) for n in (800, 1_600, 3_200, 6_400)]

        points = benchmark.pedantic(sweep, rounds=1, iterations=1)
        rows = [
            [restored, cycles,
             cycles / restored if restored else float("nan")]
            for restored, cycles in points
        ]
        print("\n[ovh-roll] rollback cost vs log size")
        print(format_table(
            ["entries undone", "rollback cycles", "cycles/entry"], rows,
        ))
        # all rollbacks happened and per-entry cost is stable (linear)
        assert all(r for r, _ in points)
        per_entry = [c / r for r, c in points]
        assert max(per_entry) / min(per_entry) < 2.0


class TestBarrierElision:
    def test_elision_reduces_virtual_time(self, benchmark):
        """A workload whose stores mostly sit outside sections runs faster
        with the elision analysis on."""
        from repro import Asm
        from repro.vm.classfile import ClassDef, FieldDef
        from repro.vm.vmcore import JVM

        def run_with(elision):
            cls = ClassDef("T", fields=[
                FieldDef("lock", "ref", is_static=True),
                FieldDef("out", "int", is_static=True),
            ])
            run = Asm("run", argc=0)
            i = run.local()
            # heavy unsynchronized store loop
            run.for_range(i, lambda: run.const(4_000), lambda: (
                run.getstatic("T", "out"), run.const(1), run.add(),
                run.putstatic("T", "out"),
            ))
            # plus one tiny section so the program is not degenerate
            run.getstatic("T", "lock")
            with run.sync():
                run.const(0).putstatic("T", "out")
            run.ret()
            cls.add_method(run.build())
            vm = JVM(VMOptions(mode="rollback", barrier_elision=elision))
            vm.load(cls)
            vm.set_static("T", "lock", vm.new_object("T"))
            vm.spawn("T", "run", name="t")
            vm.run()
            return vm.clock.now

        def both():
            return run_with(True), run_with(False)

        with_elision, without = benchmark.pedantic(
            both, rounds=1, iterations=1
        )
        print(
            f"\n[ovh-elide] elision on: {with_elision} cycles, "
            f"off: {without} cycles "
            f"(saved {(1 - with_elision / without) * 100:.1f}%)"
        )
        assert with_elision < without
