"""Extension benchmarks beyond the paper's figures.

* ``ext-policy`` — the four systems side by side on the §1 medium-thread
  inversion scenario (the paper compares against these protocols only in
  prose, §5).
* ``ext-dead``  — deadlock-breaking revocation throughput on the bank
  workload (§1's deadlock discussion).
* ``abl-queues``    — ablation: prioritized monitor queues on/off (§4).
* ``abl-detection`` — ablation: at-acquire vs periodic detection (§1).
"""

import pytest

from repro import DeadlockError, VMOptions
from repro.bench.harness import run_microbench
from repro.bench.microbench import MicrobenchConfig
from repro.bench.workloads import build_bank, build_medium_inversion
from repro.util.fmt import format_table
from repro.vm.vmcore import JVM


class TestPolicyComparison:
    def test_four_systems_on_medium_inversion(self, benchmark):
        def measure():
            rows = []
            for mode, scheduler in (
                ("unmodified", "round-robin"),
                ("rollback", "round-robin"),
                ("unmodified", "priority"),
                ("rollback", "priority"),
                ("inheritance", "priority"),
                ("ceiling", "priority"),
            ):
                workload = build_medium_inversion(medium_threads=4)
                vm = JVM(VMOptions(mode=mode, scheduler=scheduler))
                workload.install(vm)
                vm.run()
                rows.append((
                    f"{mode}/{scheduler}",
                    vm.thread_named("high").elapsed(),
                    vm.thread_named("low").elapsed(),
                    vm.clock.now,
                ))
            return rows

        rows = benchmark.pedantic(measure, rounds=1, iterations=1)
        print("\n[ext-policy] §1 medium-thread inversion scenario")
        print(format_table(
            ["system", "high elapsed", "low elapsed", "total"], rows,
            float_fmt="{:.0f}",
        ))
        results = dict((r[0], r[1]) for r in rows)
        # the paper's point: rollback rescues the high-priority thread
        # relative to the blocking VM under the SAME scheduler
        assert results["rollback/priority"] < results["unmodified/priority"]
        assert (results["rollback/round-robin"]
                < results["unmodified/round-robin"])

    def test_rollback_vs_blocking_on_paper_benchmark(self, benchmark):
        """One representative micro-benchmark configuration across all
        four systems (round-robin, as in the paper)."""
        config = MicrobenchConfig(
            high_threads=2, low_threads=6, iters_high=120, iters_low=600,
            sections=8, write_pct=40, seed=101,
        )

        def measure():
            out = {}
            for mode in ("unmodified", "rollback", "inheritance",
                         "ceiling"):
                out[mode] = run_microbench(
                    config, mode,
                    options=VMOptions(mode=mode, scheduler="round-robin"),
                )
            return out

        results = benchmark.pedantic(measure, rounds=1, iterations=1)
        rows = [
            [mode, r.high_elapsed, r.overall_elapsed, r.rollbacks]
            for mode, r in results.items()
        ]
        print("\n[ext-policy] paper micro-benchmark, one configuration")
        print(format_table(
            ["system", "high elapsed", "overall", "rollbacks"], rows,
            float_fmt="{:.0f}",
        ))
        assert (results["rollback"].high_elapsed
                < results["unmodified"].high_elapsed)


class TestDeadlockResolution:
    def test_bank_deadlock_breaking(self, benchmark):
        def measure():
            resolved = completed = deadlocked_baseline = 0
            for seed in range(8):
                workload = build_bank(accounts=4, transfers=40)
                vm = JVM(VMOptions(mode="rollback", seed=seed))
                workload.install(vm)
                vm.run()
                assert sum(
                    vm.get_static("Bank", "balances").snapshot()
                ) == 400
                resolved += vm.metrics()["support"]["deadlocks_resolved"]
                completed += 1
                baseline_workload = build_bank(accounts=4, transfers=40)
                baseline = JVM(VMOptions(mode="unmodified", seed=seed))
                baseline_workload.install(baseline)
                try:
                    baseline.run()
                except DeadlockError:
                    deadlocked_baseline += 1
            return resolved, completed, deadlocked_baseline

        resolved, completed, deadlocked = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
        print(
            f"\n[ext-dead] bank workload, 8 seeds: rollback VM completed "
            f"{completed}/8 (resolving {resolved} deadlocks); baseline VM "
            f"deadlocked on {deadlocked}/8 seeds"
        )
        assert completed == 8
        assert deadlocked >= 1


class TestAblations:
    CONFIG = MicrobenchConfig(
        high_threads=2, low_threads=6, iters_high=120, iters_low=600,
        sections=8, write_pct=40, seed=57,
    )

    def test_prioritized_queues_ablation(self, benchmark):
        """§4: the prioritized monitor queues exist so measurements do not
        depend on random arrival order; without them high-priority threads
        queue FIFO behind low ones."""
        def measure():
            out = {}
            for prioritized in (True, False):
                out[prioritized] = run_microbench(
                    self.CONFIG, "rollback",
                    options=VMOptions(
                        mode="rollback", prioritized_queues=prioritized
                    ),
                )
            return out

        results = benchmark.pedantic(measure, rounds=1, iterations=1)
        on = results[True].high_elapsed
        off = results[False].high_elapsed
        print(
            f"\n[abl-queues] high-priority elapsed with prioritized "
            f"queues: {on}; plain FIFO queues: {off} "
            f"({off / on:.2f}x slower without)"
        )
        assert on <= off * 1.1  # prioritized never meaningfully worse

    def test_detection_mode_ablation(self, benchmark):
        def measure():
            out = {}
            for detection, interval in (
                ("acquire", 0),
                ("periodic", 2_000),
                ("periodic", 20_000),
                ("both", 2_000),
            ):
                opts = VMOptions(mode="rollback", detection=detection)
                if interval:
                    opts = opts.with_(periodic_interval=interval)
                out[(detection, interval)] = run_microbench(
                    self.CONFIG, "rollback", options=opts
                )
            return out

        results = benchmark.pedantic(measure, rounds=1, iterations=1)
        rows = [
            [f"{d}{'@' + str(i) if i else ''}",
             r.high_elapsed, r.rollbacks]
            for (d, i), r in results.items()
        ]
        print("\n[abl-detection] detection mode sweep")
        print(format_table(
            ["detection", "high elapsed", "rollbacks"], rows,
            float_fmt="{:.0f}",
        ))
        # at-acquire must react at least as fast as coarse periodic
        acquire = results[("acquire", 0)].high_elapsed
        coarse = results[("periodic", 20_000)].high_elapsed
        assert acquire <= coarse * 1.2


class TestHandoffAblation:
    def test_direct_handoff_strengthens_baseline(self, benchmark):
        """abl-handoff: with direct ownership transfer (no barging), the
        blocking baseline suffers far less from priority inversion, which
        shrinks the paper's reported gains — evidence that the platform's
        release/wakeup behaviour is part of the story the figures tell."""
        config = MicrobenchConfig(
            high_threads=2, low_threads=8, iters_high=120, iters_low=600,
            sections=12, write_pct=40, seed=303,
        )

        def measure():
            out = {}
            for handoff in (False, True):
                for mode in ("unmodified", "rollback"):
                    out[(handoff, mode)] = run_microbench(
                        config, mode,
                        options=VMOptions(
                            mode=mode, direct_handoff=handoff
                        ),
                    )
            return out

        results = benchmark.pedantic(measure, rounds=1, iterations=1)
        rows = []
        gains = {}
        for handoff in (False, True):
            unmod = results[(handoff, "unmodified")].high_elapsed
            mod = results[(handoff, "rollback")].high_elapsed
            gains[handoff] = unmod / mod
            rows.append([
                "direct handoff" if handoff else "wake + barge (paper)",
                unmod, mod, unmod / mod,
            ])
        print("\n[abl-handoff] release/wakeup policy vs rollback gains")
        print(format_table(
            ["queue policy", "blocking high", "rollback high", "speedup"],
            rows, float_fmt="{:.2f}",
        ))
        # barging hurts the baseline more than the rollback VM, so the
        # paper-faithful policy shows the larger gain
        assert gains[False] >= gains[True] * 0.9
