"""Legacy shim so `pip install -e .` works offline without the `wheel`
package (PEP 660 editable installs need bdist_wheel; `--no-use-pep517`
falls back to this)."""
from setuptools import setup

setup()
